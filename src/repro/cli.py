"""Command-line interface.

Usage (installed as the ``repro`` console script, or
``python -m repro``):

    repro list-algorithms            # available policies + known bounds
    repro list-experiments           # the DESIGN.md experiment index
    repro run T2                     # regenerate one experiment
    repro run T5 --workers -1 --json t5.json  # sharded + JSON artifact
    repro report --workers -1 --resume       # cached, resumable report
    repro bounds --mu 8              # analytic bounds table at a µ
    repro generate poisson --n 100 --seed 1 --out trace.json
    repro pack trace.json --algorithm first-fit --opt --render
    repro verify trace.json          # proof-invariant checkers on FF run
    repro bench --json BENCH_perf.json   # throughput baseline
    repro serve --port 7077          # live allocation service (JSON lines)
    repro loadgen --port 7077 --n 500    # replay a workload against it
    repro loadgen --port 7077 --n 5000 --protocol binary --batch 256 --pipeline 8
    repro fleet --shards 4 --wal-dir /var/lib/repro --port 7070  # sharded fleet
    repro loadgen --port 7070 --tenants 16 --n 5000  # multi-tenant traffic
    repro trace generate --schema azure --n 10000 --out az.csv.gz  # synthetic trace file
    repro trace info az.csv.gz           # schema detection + streaming stats
    repro trace convert az.csv.gz --out az.json   # external schema -> internal trace
    repro trace sample az.csv.gz --out small.csv --fraction 0.1  # entity-keyed thinning
    repro loadgen --port 7070 --trace az.csv.gz --trace-schema azure --departs --speed 50
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import __version__
from .algorithms import ALGORITHM_REGISTRY, CLAIRVOYANT_REGISTRY, make_algorithm
from .analysis.bounds import KNOWN_BOUNDS, bounds_table
from .analysis.verification import verify_analysis
from .core.packing import run_packing
from .experiments import EXPERIMENT_ORDER, SPEC_REGISTRY
from .experiments.figures import FigureOutput
from .experiments.spec import PROFILES
from .opt.opt_total import opt_total
from .viz.timeline import render_bins
from .workloads import (
    gaming_workload,
    load_trace,
    next_fit_lower_bound,
    poisson_workload,
    save_trace,
    universal_lower_bound,
    best_fit_staircase,
)

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _workers_int(text: str) -> int:
    value = int(text)
    if value == 0 or value < -1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1, or -1 for one worker per CPU; got {value}"
        )
    return value


def _port_int(text: str) -> int:
    value = int(text)
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"must be a port in [0, 65535] (0 = ephemeral), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MinUsageTime DBP reproduction (Tang et al., IPDPS 2016)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-algorithms", help="available packing policies")
    sub.add_parser("list-experiments", help="the experiment index")

    p_run = sub.add_parser("run", help="run one experiment by id")
    p_run.add_argument("experiment", choices=list(EXPERIMENT_ORDER))
    p_run.add_argument(
        "--workers",
        type=_workers_int,
        default=None,
        help="worker processes for sharded experiments "
        "(default: serial; -1 = one per CPU; single-task experiments "
        "always run serially)",
    )
    p_run.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment's seed parameter (seed, seeds or "
        "random_seeds — whichever the spec declares; errors otherwise)",
    )
    p_run.add_argument(
        "--node-budget", type=_positive_int, default=None,
        help="override the spec's node_budget parameter (OPT search "
        "effort; errors if the spec has none)",
    )
    p_run.add_argument(
        "--profile", choices=list(PROFILES), default=None,
        help="parameter profile (default: full; smoke = small CI config)",
    )
    p_run.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the JSON result artifact here",
    )

    p_bounds = sub.add_parser("bounds", help="analytic bounds table")
    p_bounds.add_argument("--mu", type=float, default=8.0)

    p_gen = sub.add_parser("generate", help="generate a workload trace file")
    p_gen.add_argument(
        "kind",
        choices=["poisson", "gaming", "mmpp", "nextfit-lb", "universal-lb", "staircase"],
    )
    p_gen.add_argument("--out", required=True, help=".json or .csv path")
    p_gen.add_argument("--n", type=_positive_int, default=100)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--mu", type=float, default=8.0)
    p_gen.add_argument("--rate", type=float, default=2.0)

    p_pack = sub.add_parser("pack", help="pack a trace with a policy")
    p_pack.add_argument("trace", help="trace file from 'generate'")
    p_pack.add_argument(
        "--algorithm",
        default="first-fit",
        choices=sorted(ALGORITHM_REGISTRY) + sorted(CLAIRVOYANT_REGISTRY),
    )
    p_pack.add_argument("--opt", action="store_true", help="also bracket OPT_total")
    p_pack.add_argument("--render", action="store_true", help="ASCII bin timeline")

    p_verify = sub.add_parser(
        "verify", help="run the proof-invariant checkers on a First Fit run"
    )
    p_verify.add_argument("trace")

    p_bench = sub.add_parser(
        "bench",
        help=(
            "throughput benchmarks (scalar + 2-D vector grids); "
            "optionally write BENCH_perf.json"
        ),
    )
    p_bench.add_argument(
        "--json", default=None, help="write the machine-readable report here"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="small instances only (smoke test, not a baseline)",
    )
    p_bench.add_argument(
        "--repeats", type=_positive_int, default=3,
        help="timing repeats per cell (best-of, default 3)",
    )
    p_bench.add_argument(
        "--only", default=None, metavar="PATTERN",
        help="run only cells whose key matches this fnmatch pattern "
        "(e.g. 'service/*', 'throughput/*/first-fit/*', 'montecarlo'); "
        "with --json onto an existing report, unmatched cells are "
        "carried over instead of dropped",
    )

    p_inspect = sub.add_parser("inspect", help="profile a workload trace")
    p_inspect.add_argument("trace")

    p_serve = sub.add_parser(
        "serve",
        help="run the live allocation service (JSON lines over TCP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=_port_int, default=7077, help="0 = ephemeral port"
    )
    p_serve.add_argument(
        "--port-file", default=None,
        help="write the bound port here (how scripts discover --port 0)",
    )
    p_serve.add_argument(
        "--algorithm", default="first-fit", choices=sorted(ALGORITHM_REGISTRY)
    )
    p_serve.add_argument("--capacity", type=float, default=1.0)
    p_serve.add_argument(
        "--reference", action="store_true",
        help="disable the adaptive first-fit index (reference scans)",
    )
    p_serve.add_argument(
        "--admission", default="admit-all",
        choices=["admit-all", "reject", "queue", "shed"],
        help="overload behaviour (reject/queue need --max-open, shed --max-load)",
    )
    p_serve.add_argument(
        "--max-open", type=_positive_int, default=None,
        help="open-server budget for --admission reject|queue",
    )
    p_serve.add_argument(
        "--max-load", type=float, default=None,
        help="load ceiling (bins' worth of work) for --admission shed",
    )
    p_serve.add_argument(
        "--log", default=None,
        help="append the per-decision JSON-lines trace to this file",
    )
    p_serve.add_argument(
        "--wal-dir", default=None,
        help="durability directory: write-ahead log + checkpoints; an "
        "existing directory is recovered from on startup",
    )
    p_serve.add_argument(
        "--fsync", default="interval", choices=["never", "interval", "always"],
        help="WAL fsync policy (default: interval)",
    )
    p_serve.add_argument(
        "--fsync-interval", type=_positive_int, default=512,
        help="records between fsyncs for --fsync interval (default 512)",
    )
    p_serve.add_argument(
        "--checkpoint-interval", type=_positive_int, default=1000,
        help="WAL records between automatic checkpoints (default 1000)",
    )
    p_serve.add_argument(
        "--checkpoint-bytes", type=_positive_int, default=None,
        help="also checkpoint after this many WAL bytes",
    )
    p_serve.add_argument(
        "--segment-bytes", type=_positive_int, default=None,
        help="WAL segment rotation threshold (default 4 MiB)",
    )
    p_serve.add_argument(
        "--fault-plan", default=None,
        help="JSON fault-injection plan (chaos testing; see docs/OPERATIONS.md)",
    )
    p_serve.add_argument(
        "--shard-id", type=int, default=0,
        help="this worker's shard index in a fleet (default 0)",
    )
    p_serve.add_argument(
        "--num-shards", type=_positive_int, default=1,
        help="total shards in the fleet this worker belongs to "
        "(default 1 = standalone); recorded in the WAL dir MANIFEST",
    )
    p_serve.add_argument(
        "--max-line-bytes", type=_positive_int, default=None,
        help="max request line length (default 1 MiB)",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, default=None,
        help="close connections idle for this many seconds",
    )
    p_serve.add_argument(
        "--defrag", type=int, default=0, metavar="BUDGET",
        help="background defragmenter: migrate up to BUDGET items per "
        "pass to evacuate high-waste bins (default 0 = off)",
    )
    p_serve.add_argument(
        "--defrag-interval", type=float, default=0.5, metavar="SECONDS",
        help="seconds between defragmenter passes (default 0.5)",
    )
    p_serve.add_argument(
        "--uvloop", action="store_true",
        help="use the uvloop event loop if installed (warns and falls "
        "back to asyncio otherwise)",
    )
    p_serve.add_argument("--quiet", action="store_true")

    p_fleet = sub.add_parser(
        "fleet",
        help="run a sharded fleet: N serve workers behind a "
        "consistent-hash router, restarted on crash",
    )
    p_fleet.add_argument(
        "--shards", type=_positive_int, default=2,
        help="number of shard workers (default 2)",
    )
    p_fleet.add_argument(
        "--wal-dir", required=True,
        help="fleet root: each worker gets <wal-dir>/shard-XX",
    )
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument(
        "--port", type=_port_int, default=7070,
        help="router front port (0 = ephemeral)",
    )
    p_fleet.add_argument(
        "--port-file", default=None,
        help="write the router's bound port here",
    )
    p_fleet.add_argument(
        "--tenants", type=int, default=0,
        help="route key = id %% tenants (0 = raw job ids)",
    )
    p_fleet.add_argument(
        "--algorithm", default="first-fit", choices=sorted(ALGORITHM_REGISTRY)
    )
    p_fleet.add_argument("--capacity", type=float, default=1.0)
    p_fleet.add_argument(
        "--reference", action="store_true",
        help="disable the adaptive first-fit index in every worker",
    )
    p_fleet.add_argument(
        "--fsync", default="interval", choices=["never", "interval", "always"],
        help="workers' WAL fsync policy (default: interval)",
    )
    p_fleet.add_argument(
        "--fsync-interval", type=_positive_int, default=512,
        help="records between fsyncs for --fsync interval (default 512)",
    )
    p_fleet.add_argument(
        "--checkpoint-interval", type=_positive_int, default=1000,
        help="WAL records between automatic checkpoints (default 1000)",
    )
    p_fleet.add_argument(
        "--fault-plan", action="append", default=None, metavar="SHARD=PATH",
        help="inject a fault plan into one shard's first boot "
        "(chaos testing; repeatable)",
    )
    p_fleet.add_argument(
        "--router-fault-plan", default=None, metavar="PATH",
        help="arm the plan's net faults (delay/drop/truncate/reorder/"
        "partition, keyed by backend-<k> link name) on the router's "
        "worker links (chaos testing)",
    )
    p_fleet.add_argument(
        "--probe-interval", type=float, default=0.0,
        help="seconds between health probes of each worker "
        "(0 = probing disabled, the default)",
    )
    p_fleet.add_argument(
        "--probe-timeout", type=float, default=1.0,
        help="seconds a health probe may take before it counts as missed "
        "(default 1.0)",
    )
    p_fleet.add_argument(
        "--probe-misses", type=_positive_int, default=3,
        help="consecutive missed probes before a worker is declared hung "
        "and restarted (default 3)",
    )
    p_fleet.add_argument(
        "--breaker-window", type=_positive_int, default=20,
        help="per-shard circuit breaker: sliding window of recent "
        "outcomes (default 20)",
    )
    p_fleet.add_argument(
        "--breaker-threshold", type=float, default=0.5,
        help="failure rate over the window that opens the breaker "
        "(default 0.5)",
    )
    p_fleet.add_argument(
        "--breaker-cooldown", type=float, default=1.0,
        help="seconds an open breaker waits before half-open probing "
        "(default 1.0)",
    )
    p_fleet.add_argument(
        "--degraded", choices=["failfast", "queue"], default="failfast",
        help="what an open breaker does with requests: answer "
        "shard_unavailable immediately (failfast, the default) or park "
        "them until the breaker closes (queue)",
    )
    p_fleet.add_argument(
        "--defrag", type=int, default=0, metavar="BUDGET",
        help="per-shard background defragmenter budget (default 0 = off)",
    )
    p_fleet.add_argument(
        "--defrag-interval", type=float, default=0.5, metavar="SECONDS",
        help="seconds between defragmenter passes (default 0.5)",
    )
    p_fleet.add_argument(
        "--uvloop", action="store_true",
        help="use the uvloop event loop if installed (warns and falls "
        "back to asyncio otherwise)",
    )
    p_fleet.add_argument("--quiet", action="store_true")

    p_wal = sub.add_parser(
        "wal", help="offline write-ahead-log maintenance tools"
    )
    wal_sub = p_wal.add_subparsers(dest="wal_command", required=True)
    w_verify = wal_sub.add_parser(
        "verify",
        help="integrity-scan a WAL dir without booting an engine: "
        "record CRCs, sequence gaps, torn tails, checkpoint "
        "readability, MANIFEST fingerprint (rc 0 clean, 1 problems)",
    )
    w_verify.add_argument("wal_dir", help="the service's --wal-dir")
    w_verify.add_argument(
        "--json", default=None,
        help="write the scan report here ('-' for stdout)",
    )

    p_recover = sub.add_parser(
        "recover",
        help="inspect/recover a --wal-dir: restore the latest checkpoint, "
        "replay the WAL tail, report the recovered state",
    )
    p_recover.add_argument("wal_dir", help="the service's --wal-dir")
    p_recover.add_argument(
        "--algorithm", default="first-fit", choices=sorted(ALGORITHM_REGISTRY),
        help="policy for a cold replay when no checkpoint exists",
    )
    p_recover.add_argument("--capacity", type=float, default=1.0)
    p_recover.add_argument(
        "--checkpoint", action="store_true",
        help="cut a fresh checkpoint of the recovered state (and prune the WAL)",
    )
    p_recover.add_argument(
        "--json", default=None, help="write the recovery report here"
    )

    p_load = sub.add_parser(
        "loadgen",
        help="replay a workload as live traffic against a running service",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=_port_int, default=7077)
    p_load.add_argument(
        "--trace", default=None,
        help="replay this saved trace file instead of generating one",
    )
    p_load.add_argument(
        "--trace-schema", choices=["auto", "azure", "google"], default=None,
        help="treat --trace as an external cluster trace in this schema "
        "(auto = sniff it); default: the internal trace format",
    )
    p_load.add_argument(
        "--departs", action="store_true",
        help="also announce each job's departure as an explicit depart "
        "request at its trace time (trace replay mode)",
    )
    p_load.add_argument(
        "--kind", choices=["poisson", "gaming"], default="poisson",
        help="generated workload kind (ignored with --trace)",
    )
    p_load.add_argument("--n", type=_positive_int, default=200)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--mu", type=float, default=8.0)
    p_load.add_argument("--rate", type=float, default=2.0)
    p_load.add_argument(
        "--speed", type=float, default=0.0,
        help="trace-time units per wall-clock second (0 = closed loop)",
    )
    p_load.add_argument(
        "--shutdown", action="store_true",
        help="send a shutdown op after draining (stops the service)",
    )
    p_load.add_argument(
        "--retries", type=int, default=0,
        help="retry lost requests up to N times (exponential backoff + "
        "jitter; submits carry request ids, so retries are exactly-once)",
    )
    p_load.add_argument(
        "--retry-seed", type=int, default=0,
        help="seed for the retry jitter and the request-id namespace",
    )
    p_load.add_argument(
        "--protocol", choices=["json", "binary"], default="json",
        help="wire protocol: json lines (debug/compat) or the "
        "length-prefixed binary fast path",
    )
    p_load.add_argument(
        "--pipeline", type=_positive_int, default=1,
        help="frames kept in flight (>1 requires --protocol binary)",
    )
    p_load.add_argument(
        "--batch", type=_positive_int, default=1,
        help="submits per frame (>1 requires --protocol binary)",
    )
    p_load.add_argument(
        "--tenants", type=int, default=0,
        help="rewrite job ids into N stable per-tenant key streams and "
        "report the fleet router's per-shard request counts (0 = off)",
    )
    p_load.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="attach an end-to-end deadline budget (milliseconds) to "
        "every request; each hop spends from it and an exhausted budget "
        "answers deadline_exceeded (0 = no deadline, the default)",
    )
    p_load.add_argument(
        "--uvloop", action="store_true",
        help="use the uvloop event loop if installed (warns and falls "
        "back to asyncio otherwise)",
    )
    p_load.add_argument(
        "--json", default=None, help="write the client-side report here"
    )

    p_trace = sub.add_parser(
        "trace", help="cluster-trace ingestion (Azure / Google schemas)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_gen = trace_sub.add_parser(
        "generate", help="write a seeded synthetic trace file in an external schema"
    )
    t_gen.add_argument("--schema", choices=["azure", "google"], required=True)
    t_gen.add_argument("--out", required=True, help="output path (.gz compresses)")
    t_gen.add_argument("--n", type=_positive_int, default=1000)
    t_gen.add_argument("--seed", type=int, default=0)
    t_gen.add_argument("--mu", type=float, default=50.0,
                       help="duration spread (max/min ratio)")
    t_gen.add_argument("--rate", type=float, default=None,
                       help="arrival rate (azure: VMs/day, google: tasks/sec)")
    t_gen.add_argument("--censored", type=float, default=0.0,
                       help="azure: fraction of VMs with no endtime")
    t_gen.add_argument("--malformed", type=float, default=0.0,
                       help="fraction of unparsable records")
    t_gen.add_argument("--orphaned", type=float, default=0.0,
                       help="google: fraction of FINISHes with no SUBMIT")
    t_gen.add_argument("--unfinished", type=float, default=0.0,
                       help="google: fraction of SUBMITs never FINISHed")

    t_info = trace_sub.add_parser(
        "info", help="detect the schema and stream summary statistics"
    )
    t_info.add_argument("trace", help="trace file (.gz ok)")
    t_info.add_argument("--schema", choices=["azure", "google"], default=None,
                        help="skip detection and force a schema")
    t_info.add_argument("--strict", action="store_true",
                        help="raise on the first malformed record")

    t_conv = trace_sub.add_parser(
        "convert", help="convert an external trace into the internal format"
    )
    t_conv.add_argument("trace", help="trace file (.gz ok)")
    t_conv.add_argument("--out", required=True,
                        help="internal trace path (.json/.csv, .gz ok)")
    t_conv.add_argument("--schema", choices=["azure", "google"], default=None)
    t_conv.add_argument("--vector", action="store_true",
                        help="emit vector (cpu, memory) items (JSON only)")
    t_conv.add_argument("--window", type=float, nargs=2, default=None,
                        metavar=("START", "END"),
                        help="keep items arriving in [START, END)")
    t_conv.add_argument("--sample", type=float, default=None,
                        help="keep a deterministic fraction of items (0, 1]")
    t_conv.add_argument("--seed", type=int, default=0,
                        help="sampling seed")
    t_conv.add_argument("--scale", type=float, default=1.0,
                        help="divide sizes by this capacity factor")
    t_conv.add_argument("--no-clamp", action="store_true",
                        help="do not cap sizes at bin capacity")
    t_conv.add_argument("--strict", action="store_true",
                        help="raise on the first malformed record")

    t_sample = trace_sub.add_parser(
        "sample", help="thin a raw trace file, keeping whole entities"
    )
    t_sample.add_argument("trace", help="trace file (.gz ok)")
    t_sample.add_argument("--out", required=True, help="thinned trace path")
    t_sample.add_argument("--fraction", type=float, required=True,
                          help="fraction of entities to keep (0, 1]")
    t_sample.add_argument("--seed", type=int, default=0)
    t_sample.add_argument("--schema", choices=["azure", "google"], default=None)

    p_report = sub.add_parser(
        "report", help="run all experiments and write a consolidated report"
    )
    p_report.add_argument("--out", default="REPORT.md")
    p_report.add_argument(
        "--only", nargs="*", default=None,
        help="experiment ids to include (default: all)",
    )
    p_report.add_argument(
        "--workers", type=_workers_int, default=None,
        help="fan experiment shards across worker processes "
        "(default: serial; -1 = one per CPU)",
    )
    p_report.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="store each experiment's JSON artifact here as it completes",
    )
    p_report.add_argument(
        "--resume", action="store_true",
        help="serve results from the cache instead of recomputing "
        "(defaults --cache-dir to .repro-cache)",
    )
    p_report.add_argument(
        "--profile", choices=list(PROFILES), default=None,
        help="parameter profile (default: full; smoke = small CI config)",
    )
    p_report.add_argument(
        "--stamp", default=None,
        help="fixed timestamp for the report header (byte-reproducible "
        "output; SOURCE_DATE_EPOCH is honoured too)",
    )

    return parser


def _make_any(name: str):
    if name in ALGORITHM_REGISTRY:
        return make_algorithm(name)
    return CLAIRVOYANT_REGISTRY[name]()


def cmd_list_algorithms() -> int:
    bound_by_name = {b.algorithm: b for b in KNOWN_BOUNDS}
    print(f"{'name':24s} {'model':14s} known bounds (at µ)")
    print("-" * 64)
    for name in sorted(ALGORITHM_REGISTRY):
        e = bound_by_name.get(name)
        if e is None:
            desc = "—"
        else:
            lo = "µ-dep" if e.lower else "—"
            parts = []
            if e.lower:
                v = e.lower_at(8.0)
                parts.append("lower unbounded" if v == float("inf") else f"lower {v:g}@µ=8")
            if e.upper:
                parts.append(f"upper {e.upper_at(8.0):g}@µ=8")
            desc = ", ".join(parts) or "—"
        print(f"{name:24s} {'online':14s} {desc}")
    for name in sorted(CLAIRVOYANT_REGISTRY):
        print(f"{name:24s} {'clairvoyant':14s} knows departures (reference model)")
    return 0


def cmd_list_experiments() -> int:
    print(f"{'id':6s} target")
    print("-" * 60)
    for eid in EXPERIMENT_ORDER:
        print(f"{eid:6s} {SPEC_REGISTRY[eid].doc}")
    return 0


def _seed_override(spec, seed: Optional[int]) -> dict:
    """Map ``--seed`` onto whichever seed parameter the spec declares."""
    if seed is None:
        return {}
    for name in ("seed", "seeds", "random_seeds"):
        if spec.has_param(name):
            return {name: seed if name == "seed" else (seed,)}
    raise ValueError(
        f"{spec.id}: no seed parameter "
        f"(declared: {', '.join(spec.param_names()) or 'none'})"
    )


def cmd_run(args) -> int:
    import json

    from .experiments.runner import artifact_document, run_spec

    spec = SPEC_REGISTRY[args.experiment]
    try:
        overrides = {"node_budget": args.node_budget}
        overrides.update(_seed_override(spec, args.seed))
        # resolve up front: a typo'd flag must fail before any compute,
        # and --json needs the resolved params for the artifact
        params = spec.resolve(overrides, profile=args.profile)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_spec(spec, overrides, workers=args.workers, profile=args.profile)
    if isinstance(result, FigureOutput):
        print(result.rendering)
    else:
        print(result.render())
    if args.json:
        with open(args.json, "w") as f:
            # no sort_keys: row dicts are insertion-ordered (column order)
            json.dump(artifact_document(spec, params, result), f, indent=1)
            f.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_generate(kind: str, out: str, n: int, seed: int, mu: float, rate: float) -> int:
    if kind == "poisson":
        items = poisson_workload(n, seed=seed, mu_target=mu, arrival_rate=rate)
    elif kind == "gaming":
        items = gaming_workload(n, seed=seed, request_rate=rate)
    elif kind == "mmpp":
        from .workloads.mmpp import mmpp_workload

        # interpret --n as the horizon for the phase process
        items = mmpp_workload(float(max(n, 1)), seed=seed, mu_target=mu)
    elif kind == "nextfit-lb":
        items = next_fit_lower_bound(max(n, 3), mu)
    elif kind == "universal-lb":
        items = universal_lower_bound(n, mu)
    else:  # staircase
        items = best_fit_staircase(max(n, 3), mu)
    save_trace(items, out)
    print(f"wrote {len(items)} items (µ = {items.mu:.2f}) to {out}")
    return 0


def cmd_pack(trace: str, algorithm: str, want_opt: bool, render: bool) -> int:
    items = load_trace(trace)
    result = run_packing(items, _make_any(algorithm), capacity=items.capacity)
    print(result.summary())
    if want_opt:
        opt = opt_total(items)
        kind = "exact" if opt.exact else "bracket"
        print(f"OPT_total in [{opt.lower:.4f}, {opt.upper:.4f}] ({kind})")
        print(f"conservative ratio: {result.total_usage_time / opt.lower:.4f} "
              f"(µ+4 bound: {items.mu + 4:.2f})")
    if render:
        print(render_bins(result))
    return 0


def cmd_verify(trace: str) -> int:
    items = load_trace(trace)
    result = run_packing(items, make_algorithm("first-fit"), capacity=items.capacity)
    report = verify_analysis(result)
    print(f"µ = {report.mu:.3f}; {report.num_l_subperiods} l-subperiods, "
          f"{report.num_h_subperiods} h-subperiods, {report.num_groups} supplier groups")
    print(f"closed-form Theorem-1 slack: {report.closed_form_slack:.4f}")
    if report.ok:
        print("all propositions and lemmas hold")
        return 0
    for v in report.violations:
        print(f"VIOLATION {v.check} [{v.context}]: {v.detail}")
    return 1


def _maybe_uvloop(enabled: bool) -> bool:
    """Install uvloop as the event-loop policy when asked and available.

    The container may not ship uvloop (it is an optional accelerator,
    never a dependency) — in that case warn once and keep stock asyncio,
    so ``--uvloop`` is always safe to pass.
    """
    if not enabled:
        return False
    try:
        import uvloop
    except ImportError:
        print(
            "warning: --uvloop requested but uvloop is not installed; "
            "using the stock asyncio event loop",
            file=sys.stderr,
        )
        return False
    uvloop.install()
    return True


def cmd_serve(args) -> int:
    import asyncio

    from .service import (
        DecisionLog,
        FaultInjector,
        FaultPlan,
        KillPoint,
        ShardContext,
        ShardSpec,
        make_admission_policy,
        serve,
    )

    try:
        admission = make_admission_policy(
            args.admission, max_open=args.max_open, max_load=args.max_load
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    injector = None
    if args.fault_plan:
        try:
            injector = FaultInjector(FaultPlan.from_file(args.fault_plan))
        except (OSError, ValueError) as exc:
            print(f"error: bad fault plan: {exc}", file=sys.stderr)
            return 2
    sink = open(args.log, "a") if args.log else None
    try:
        decision_log = DecisionLog(sink) if sink is not None else None
        # one boot path whether this process is a standalone service or
        # one worker of a fleet: the default spec (0 of 1) is the
        # degenerate single-shard case
        spec = ShardSpec(shard_id=args.shard_id, num_shards=args.num_shards)
        context = ShardContext.create(
            spec,
            algorithm=args.algorithm,
            capacity=args.capacity,
            indexed=not args.reference,
            admission=admission,
            decision_log=decision_log,
            wal_dir=args.wal_dir or None,
            fsync=args.fsync,
            fsync_every=args.fsync_interval,
            segment_bytes=args.segment_bytes,
            checkpoint_every=args.checkpoint_interval,
            checkpoint_bytes=args.checkpoint_bytes,
            injector=injector,
        )
        if context.recovery_report is not None and not args.quiet:
            print(context.recovery_report.render())
        service_kwargs = {}
        if args.max_line_bytes is not None:
            service_kwargs["max_line_bytes"] = args.max_line_bytes
        if args.idle_timeout is not None:
            service_kwargs["idle_timeout"] = args.idle_timeout
        if args.defrag > 0:
            service_kwargs["defrag_budget"] = args.defrag
            service_kwargs["defrag_interval"] = args.defrag_interval
        if args.num_shards > 1:
            service_kwargs["shard"] = spec
        _maybe_uvloop(args.uvloop)
        try:
            return asyncio.run(
                serve(
                    context.engine,
                    host=args.host,
                    port=args.port,
                    quiet=args.quiet,
                    port_file=args.port_file,
                    injector=injector,
                    **service_kwargs,
                )
            )
        except KillPoint as exc:
            # a fault-plan kill simulates an abrupt crash: die here,
            # skipping every cleanup path (no WAL close, no checkpoint)
            # so recovery faces exactly what kill -9 would leave behind
            import os

            print(f"fault injection: {exc}", file=sys.stderr)
            sys.stderr.flush()
            os._exit(70)
        finally:
            context.close()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if sink is not None:
            sink.close()


def cmd_fleet(args) -> int:
    import asyncio

    from .service import FleetSupervisor

    fault_plans: dict[int, str] = {}
    for entry in args.fault_plan or ():
        shard_text, sep, path = entry.partition("=")
        if not sep or not shard_text.isdigit() or not path:
            print(
                f"error: --fault-plan wants SHARD=PATH, got {entry!r}",
                file=sys.stderr,
            )
            return 2
        fault_plans[int(shard_text)] = path
    bad = [i for i in fault_plans if i >= args.shards]
    if bad:
        print(
            f"error: --fault-plan shard(s) {bad} out of range "
            f"for --shards {args.shards}",
            file=sys.stderr,
        )
        return 2
    serve_args = [
        "--algorithm", args.algorithm,
        "--capacity", str(args.capacity),
        "--fsync", args.fsync,
        "--fsync-interval", str(args.fsync_interval),
        "--checkpoint-interval", str(args.checkpoint_interval),
    ]
    if args.reference:
        serve_args.append("--reference")
    if args.defrag > 0:
        serve_args += [
            "--defrag", str(args.defrag),
            "--defrag-interval", str(args.defrag_interval),
        ]
    router_kwargs = {
        "degraded": args.degraded,
        "breaker_window": args.breaker_window,
        "breaker_threshold": args.breaker_threshold,
        "breaker_cooldown": args.breaker_cooldown,
    }
    if args.router_fault_plan:
        from .service import FaultInjector, FaultPlan

        try:
            router_kwargs["fault_injector"] = FaultInjector(
                FaultPlan.from_file(args.router_fault_plan)
            )
        except (OSError, ValueError) as exc:
            print(f"error: bad router fault plan: {exc}", file=sys.stderr)
            return 2
    supervisor = FleetSupervisor(
        args.shards,
        args.wal_dir,
        host=args.host,
        tenants=args.tenants,
        serve_args=serve_args,
        fault_plans=fault_plans,
        quiet=args.quiet,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        probe_misses=args.probe_misses,
        router_kwargs=router_kwargs,
    )
    _maybe_uvloop(args.uvloop)
    try:
        return asyncio.run(
            supervisor.run(
                front_host=args.host,
                front_port=args.port,
                port_file=args.port_file,
            )
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_wal(args) -> int:
    import json

    from .service.wal import verify_wal_dir

    if args.wal_command != "verify":  # pragma: no cover - argparse enforces
        raise AssertionError(f"unhandled wal command {args.wal_command}")
    report = verify_wal_dir(args.wal_dir)
    if args.json:
        blob = json.dumps(report, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(blob)
        else:
            with open(args.json, "w") as f:
                f.write(blob)
    if args.json != "-":
        seg_count = len(report["segments"])
        ckpt_ok = sum(1 for c in report["checkpoints"] if c["ok"])
        print(
            f"wal verify {report['directory']}: {report['records']} records "
            f"in {seg_count} segment(s), seq "
            f"{report['first_seq'] or 0}..{report['last_seq'] or 0}"
        )
        print(
            f"checkpoints: {ckpt_ok}/{len(report['checkpoints'])} loadable; "
            f"manifest: "
            + (
                "absent"
                if not report["manifest"]["present"]
                else "fingerprint "
                + {
                    True: "ok",
                    False: "MISMATCH",
                    None: "not recorded",
                }[report["manifest"]["fingerprint_ok"]]
            )
        )
        if report["torn_tail_bytes"]:
            print(
                f"torn tail: {report['torn_tail_bytes']} bytes "
                f"(recovery truncates these)"
            )
        for line in report["errors"]:
            print(f"problem: {line}")
        print("clean" if report["ok"] else f"{len(report['errors'])} problem(s)")
    return 0 if report["ok"] else 1


def cmd_recover(args) -> int:
    import json

    from .service import MetricsRegistry, StreamingEngine, recover

    try:
        engine, report = recover(
            args.wal_dir,
            engine_builder=lambda: StreamingEngine.scalar(
                make_algorithm(args.algorithm),
                capacity=args.capacity,
                metrics=MetricsRegistry(),
            ),
            metrics=MetricsRegistry(),
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    stats = engine.stats()
    print(
        f"recovered state: clock {stats['clock']:g}, "
        f"{stats['open_bins']} open / {stats['bins_used']} used servers, "
        f"{stats['placed']} placed, {stats['active']} active, "
        f"queue depth {stats['queue_depth']}, policy {stats['algorithm']}"
    )
    if args.checkpoint:
        path = engine.checkpoint_now()
        print(f"checkpointed recovered state to {path}")
    engine.close()
    if args.json:
        payload = report.to_json()
        payload["stats"] = {
            k: v for k, v in stats.items() if k != "admission"
        }
        with open(args.json, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True, default=str)
            f.write("\n")
    return 0


def cmd_loadgen(args) -> int:
    import json

    from .service import RetryPolicy, loadgen

    if args.trace and args.trace_schema:
        from .traces import load_items, normalize_items

        schema = None if args.trace_schema == "auto" else args.trace_schema
        items, stats = load_items(args.trace, schema=schema)
        # rebase to t=0 and clamp dirty sizes so the replay starts
        # immediately and every job is admissible
        items, _ = normalize_items(items)
        print(
            f"trace: {stats.items} jobs from {args.trace} "
            f"(skipped {stats.malformed} malformed, {stats.orphaned} orphaned, "
            f"{stats.censored} censored; {stats.unfinished} unfinished)"
        )
    elif args.trace:
        items = load_trace(args.trace)
    elif args.kind == "gaming":
        items = gaming_workload(args.n, seed=args.seed, request_rate=args.rate)
    else:
        items = poisson_workload(
            args.n, seed=args.seed, mu_target=args.mu, arrival_rate=args.rate
        )
    _maybe_uvloop(args.uvloop)
    try:
        report = loadgen(
            items,
            host=args.host,
            port=args.port,
            speed=args.speed,
            shutdown=args.shutdown,
            retry=RetryPolicy(retries=args.retries, seed=args.retry_seed),
            protocol=args.protocol,
            pipeline=args.pipeline,
            batch=args.batch,
            tenants=args.tenants,
            departs=args.departs,
            deadline_ms=args.deadline_ms,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach the service at {args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 1
    print(report.render())
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
    return 0


def cmd_trace(args) -> int:
    from .traces import (
        TraceFormatError,
        detect_schema,
        generate_trace,
        get_adapter,
        load_items,
        normalize_items,
        sample_trace_file,
    )

    try:
        if args.trace_command == "generate":
            knobs = {"mu": args.mu}
            if args.rate is not None:
                key = "rate_per_day" if args.schema == "azure" else "rate_per_sec"
                knobs[key] = args.rate
            if args.schema == "azure":
                knobs.update(censored=args.censored, malformed=args.malformed)
            else:
                knobs.update(
                    orphaned=args.orphaned,
                    unfinished=args.unfinished,
                    malformed=args.malformed,
                )
            lines = generate_trace(args.schema, args.out, args.n, seed=args.seed, **knobs)
            print(f"wrote {lines} lines ({args.schema} schema) to {args.out}")
            return 0

        if args.trace_command == "info":
            adapter = (
                get_adapter(args.schema) if args.schema else detect_schema(args.trace)
            )
            instance, stats = load_items(
                args.trace, schema=adapter.name, strict=args.strict
            )
            print(f"schema: {adapter.name} — {adapter.description}")
            for key, value in stats.as_dict().items():
                print(f"{key}: {value}")
            if len(instance):
                period = instance.packing_period
                print(f"span: {instance.span:.6f}")
                print(f"mu: {instance.mu:.3f}")
                print(f"packing period: [{period.left:.6f}, {period.right:.6f}]")
                print(f"time-space demand: {instance.time_space_demand:.6f}")
            return 0

        if args.trace_command == "convert":
            instance, stats = load_items(
                args.trace, schema=args.schema, vector=args.vector,
                strict=args.strict,
            )
            window = tuple(args.window) if args.window else None
            instance, norm = normalize_items(
                instance,
                window=window,
                sample=args.sample,
                seed=args.seed,
                scale=args.scale,
                clamp=None if args.no_clamp else 1.0,
            )
            save_trace(instance, args.out)
            print(
                f"converted {stats.items} -> kept {norm.kept} items "
                f"({norm.dropped_window} outside window, "
                f"{norm.dropped_sample} sampled out, {norm.clamped} clamped); "
                f"wrote {args.out}"
            )
            return 0

        if args.trace_command == "sample":
            schema = args.schema or detect_schema(args.trace).name
            kept, total = sample_trace_file(
                args.trace, args.out, schema, args.fraction, seed=args.seed
            )
            print(f"kept {kept}/{total} data lines ({schema}); wrote {args.out}")
            return 0
    except BrokenPipeError:
        raise  # stdout consumer closed the pipe; main() handles this
    except (TraceFormatError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled trace command {args.trace_command}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) closed the pipe — not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


def _dispatch(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-algorithms":
        return cmd_list_algorithms()
    if args.command == "list-experiments":
        return cmd_list_experiments()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "bounds":
        print(bounds_table(args.mu))
        return 0
    if args.command == "generate":
        return cmd_generate(args.kind, args.out, args.n, args.seed, args.mu, args.rate)
    if args.command == "pack":
        return cmd_pack(args.trace, args.algorithm, args.opt, args.render)
    if args.command == "verify":
        return cmd_verify(args.trace)
    if args.command == "bench":
        from .bench import run_bench

        report = run_bench(
            quick=args.quick, repeats=args.repeats, json_path=args.json,
            only=args.only,
        )
        print(report.render())
        return 0
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "fleet":
        return cmd_fleet(args)
    if args.command == "wal":
        return cmd_wal(args)
    if args.command == "recover":
        return cmd_recover(args)
    if args.command == "loadgen":
        return cmd_loadgen(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "inspect":
        from .workloads.profile import profile_instance

        print(profile_instance(load_trace(args.trace)).render())
        return 0
    if args.command == "report":
        from .experiments.report import generate_report_summary

        cache_dir = args.cache_dir
        if cache_dir is None and args.resume:
            cache_dir = ".repro-cache"
        try:
            path, summary = generate_report_summary(
                args.out,
                only=tuple(args.only) if args.only else None,
                progress=lambda eid: print(f"running {eid} ..."),
                workers=args.workers,
                cache_dir=cache_dir,
                resume=args.resume,
                profile=args.profile,
                stamp=args.stamp,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
        print(summary.render())
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
