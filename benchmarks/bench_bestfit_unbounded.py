"""T4: the Best Fit staircase — the BF-specific failure mode."""

from repro.experiments.lower_bounds import run_bestfit_staircase


def test_bestfit_staircase_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_bestfit_staircase(ns=(12, 24, 48), mus=(4.0, 8.0, 16.0)),
        rounds=1,
        iterations=1,
    )
    for row in exp.rows:
        assert row["bf_ratio"] > row["ff_ratio"]
    # the BF/FF gap grows with µ at every n: the gadget's Θ(√n) scattered
    # bins each pay the full µ under BF while FF pays µ once
    for n in (12, 24, 48):
        gaps = [r["bf_over_ff"] for r in exp.rows if r["n"] == n]
        assert gaps == sorted(gaps)
    biggest = max(r["bf_over_ff"] for r in exp.rows)
    assert biggest > 2.0
    # First Fit is essentially optimal on the gadget
    assert all(r["ff_ratio"] < 1.2 for r in exp.rows)
    save_artifact("T4_bestfit_staircase", exp.render())
