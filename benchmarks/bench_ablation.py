"""X2: ablations — selection rule, hybrid thresholds, analysis constants."""

from repro.experiments.ablation import (
    run_constants_ablation,
    run_hff_threshold_ablation,
    run_selection_ablation,
)


def test_selection_rule_ablation(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_selection_ablation(mu=8.0),
                             rounds=1, iterations=1)
    by = {r["selection"]: r for r in exp.rows}
    # First Fit's worst ratio is no worse than Best Fit's over the suite
    # (the staircase instance punishes BF)
    assert by["first-fit"]["worst_ratio"] <= by["best-fit"]["worst_ratio"] + 1e-9
    save_artifact("X2a_selection", exp.render())


def test_hff_threshold_ablation(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_hff_threshold_ablation(mu=8.0),
                             rounds=1, iterations=1)
    # finer classification can't help on random workloads where mixing is
    # fine — plain FF (classes = 1) should be best or near-best
    plain = next(r for r in exp.rows if r["classes"] == 1)
    assert plain["mean_ratio"] <= min(r["mean_ratio"] for r in exp.rows) + 0.25
    save_artifact("X2b_hff_thresholds", exp.render())


def test_constants_reconstruction_ablation(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_constants_ablation(),
                             rounds=1, iterations=1)
    rec = next(r for r in exp.rows if "reconstructed" in r["constants"])
    wrong = [r for r in exp.rows if "reconstructed" not in r["constants"]]
    # the reconstructed constants are violation-free; at least one
    # neighbouring choice is not (it's what motivated the reconstruction)
    assert rec["violating_instances"] == 0
    assert any(r["violating_instances"] > 0 for r in wrong)
    save_artifact("X2c_constants", exp.render())
