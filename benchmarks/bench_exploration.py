"""X5: hill-climbing falsification attempt on the competitive bounds."""

from repro.experiments.exploration import run_worst_case_search


def test_worst_case_search(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_worst_case_search(mu=4.0, iterations=120, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    # the falsification attempt must fail: every found ratio within bound
    assert all(exp.column("within_bound"))
    # the search is not a no-op: it improves on at least one start
    assert any(r["improvement"] > 0.01 for r in exp.rows)
    # gadget starts dominate random starts (structure beats noise)
    for algo in ("first-fit", "next-fit"):
        rows = {r["start"]: r["found_ratio"] for r in exp.rows if r["algorithm"] == algo}
        assert rows["gadget"] >= rows["random"]
    save_artifact("X5_worst_case_search", exp.render())
