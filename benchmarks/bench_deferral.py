"""X9: deferred dispatch — the patience frontier."""

import pytest

from repro.experiments.deferral_exp import run_deferral


def test_deferral_frontier(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_deferral(), rounds=1, iterations=1)
    rows = exp.rows
    # zero patience is exactly First Fit
    assert rows[0]["max_delay"] == 0.0
    assert rows[0]["vs_ff"] == pytest.approx(1.0)
    assert rows[0]["delayed_jobs"] == 0
    # costs fall (weakly) along the sweep and the largest patience saves ≥ 10%
    costs = [r["usage_cost"] for r in rows]
    assert costs[-1] <= costs[0]
    assert rows[-1]["vs_ff"] < 0.9
    # waits rise with patience and respect the window
    for r in rows:
        assert r["max_wait"] <= r["max_delay"] + 1e-9
    waits = [r["mean_wait"] for r in rows]
    assert waits == sorted(waits)
    save_artifact("X9_deferral", exp.render())
