"""T5: the known-bounds table vs measured worst-case ratios."""

from repro.experiments.comparison import run_bounds_table


def test_bounds_table(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_bounds_table(mu=8.0), rounds=1, iterations=1)
    rows = {r["algorithm"]: r for r in exp.rows}
    # First Fit within µ+4 = 12
    assert rows["first-fit"]["measured_worst"] <= 12.0
    # Next Fit within 2µ+1 = 17, and worse than First Fit
    assert rows["next-fit"]["measured_worst"] <= 17.0
    assert rows["next-fit"]["measured_worst"] > rows["first-fit"]["measured_worst"]
    # Best Fit at least as bad as First Fit on its staircase
    assert rows["best-fit"]["measured_worst"] >= rows["first-fit"]["measured_worst"] - 1e-9
    save_artifact("T5_bounds_table", exp.render())
