"""X1: the multi-dimensional extension (Section IX future work)."""

from repro.experiments.multidim_exp import run_multidim


def test_multidim_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_multidim(n=120, seeds=(1, 2, 3), dimensions=(1, 2, 3),
                             correlations=(0.0, 0.5, 1.0)),
        rounds=1,
        iterations=1,
    )
    # all ratios are valid (≥ 1 vs the closed-form lower bound)
    assert all(r["mean_ratio"] >= 1.0 - 1e-9 for r in exp.rows)
    # vector First Fit ratio grows with the number of independent dims
    ff = [r for r in exp.rows if r["sweep"] == "dimensions"
          and r["algorithm"] == "vector-first-fit"]
    assert ff[-1]["mean_ratio"] >= ff[0]["mean_ratio"] - 0.05
    # vector Next Fit is never better than vector First Fit on average
    for sweep_val in {(r["sweep"], r["value"]) for r in exp.rows}:
        by_algo = {
            r["algorithm"]: r["mean_ratio"]
            for r in exp.rows
            if (r["sweep"], r["value"]) == sweep_val
        }
        assert by_algo["vector-next-fit"] >= by_algo["vector-first-fit"] - 0.05
    save_artifact("X1_multidim", exp.render())
