"""X8: value of departure predictions vs their accuracy."""

import math

from repro.experiments.predictions_exp import run_predictions


def test_predictions_table(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_predictions(), rounds=1, iterations=1)
    rows = exp.rows
    oracle = next(r for r in rows if r["policy"].startswith("oracle"))
    ff = next(r for r in rows if r["policy"].startswith("first-fit"))
    sigma0 = next(
        r for r in rows if r["policy"] == "predicted-departure-fit" and r["sigma"] == 0.0
    )
    # consistency: perfect predictions reproduce the oracle exactly
    assert sigma0["mean_ratio"] == oracle["mean_ratio"]
    # the oracle beats blind First Fit
    assert oracle["mean_ratio"] <= ff["mean_ratio"] + 1e-9
    # degradation: the noisiest predictor is no better than the oracle
    # and lands in the neighbourhood of First Fit
    noisiest = max(
        (r for r in rows if r["policy"] == "predicted-departure-fit"),
        key=lambda r: r["sigma"],
    )
    assert noisiest["mean_ratio"] >= oracle["mean_ratio"] - 1e-9
    assert abs(noisiest["mean_ratio"] - ff["mean_ratio"]) < 0.1
    save_artifact("X8_predictions", exp.render())
