"""X4: adaptive keep-alive adversary vs deterministic policies."""

from repro.experiments.adaptive import run_adaptive_adversary


def test_adaptive_adversary_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_adaptive_adversary(waves=5, k=5, bins_per_wave=3,
                                       mus=(4.0, 8.0)),
        rounds=1,
        iterations=1,
    )
    for mu in (4.0, 8.0):
        rows = {r["policy"]: r for r in exp.rows if r["mu"] == mu}
        # Next Fit suffers most: its retired bins strand survivors
        assert rows["next-fit"]["ratio"] > rows["first-fit"]["ratio"]
        # nobody breaches their analytic ceiling
        assert rows["first-fit"]["ratio"] <= mu + 4.0
        assert rows["next-fit"]["ratio"] <= 2 * mu + 1.0
        # the adversary does real damage: ratios are well above 1
        assert rows["next-fit"]["ratio"] > 1.5
    # higher µ, higher damage (survivors pinned longer)
    ff4 = next(r for r in exp.rows if r["mu"] == 4.0 and r["policy"] == "first-fit")
    ff8 = next(r for r in exp.rows if r["mu"] == 8.0 and r["policy"] == "first-fit")
    assert ff8["ratio"] > ff4["ratio"]
    save_artifact("X4_adaptive_adversary", exp.render())
