"""X13: online bounded-migration repacking (usage ratio vs. move budget)."""

from repro.experiments.defrag_exp import run_defrag_budget


def test_defrag_budget_table(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_defrag_budget(), rounds=1, iterations=1)
    by_family = {}
    for row in exp.rows:
        by_family.setdefault(row["family"], []).append(row)
    for family, rows in by_family.items():
        rows.sort(key=lambda r: r["budget"])
        # budget 0 is the off switch: plain First Fit, zero moves
        assert rows[0]["budget"] == 0 and rows[0]["moves"] == 0
        # migration never hurts on these families: the largest budget
        # does at least as well as First Fit
        assert rows[-1]["ratio"] <= rows[0]["ratio"] + 1e-9
        # every measured packing stays above the repacking adversary
        for row in rows:
            assert row["ratio"] >= row["adversary_ratio"] - 1e-6
    # the headline: on the universal lower-bound gadget a *bounded*
    # online repacker crosses below mu — the paper's Theorem 2 bound
    # binds non-migratory algorithms only, and a small budget is
    # already enough to escape it on the construction itself
    univ = by_family["universal-lb(12,4)"]
    assert univ[0]["ratio"] > 2.0  # First Fit is badly hurt by the gadget
    assert any(r["ratio"] < r["mu"] for r in univ if r["budget"] > 0)
    save_artifact("X13_defrag_budget", exp.render())
