"""T6: total renting cost on the motivating cloud-gaming application."""

import pytest

from repro.experiments.cloud_gaming import run_cloud_gaming


def test_cloud_gaming_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_cloud_gaming(num_sessions=300, rates=(1.0, 4.0, 12.0), seed=42),
        rounds=1,
        iterations=1,
    )
    rows = exp.rows
    # Next Fit never beats First Fit on any scenario
    for r in rows:
        if r["algorithm"] == "next-fit":
            assert r["vs_ff"] >= 1.0 - 1e-9
    # NF's disadvantage grows with load: more concurrent sessions mean
    # more retired-but-open bins it cannot reuse
    for billing in ("continuous", "hourly"):
        nf_gaps = [
            r["vs_ff"] for r in rows
            if r["billing"] == billing and r["algorithm"] == "next-fit"
        ]
        assert nf_gaps == sorted(nf_gaps)
    # hourly quantisation amplifies NF's gap (it opens more servers, each
    # paying the round-up waste)
    for rate in (4.0, 12.0):
        def gap(billing, rate=rate):
            return next(
                r["vs_ff"] for r in rows
                if r["rate"] == rate and r["billing"] == billing
                and r["algorithm"] == "next-fit"
            )
        assert gap("hourly") >= gap("continuous") - 1e-9
    save_artifact("T6_cloud_gaming", exp.render())
