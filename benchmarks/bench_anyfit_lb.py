"""T3: the universal (any-algorithm) µ lower-bound construction."""

import pytest

from repro.experiments.lower_bounds import run_universal_lower_bound


def test_universal_lower_bound_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_universal_lower_bound(ns=(8, 16, 32), mus=(2.0, 4.0, 8.0)),
        rounds=1,
        iterations=1,
    )
    for row in exp.rows:
        # the gadget admits no choice: all policies coincide
        assert row["ff_ratio"] == pytest.approx(row["bf_ratio"], rel=1e-9)
        assert row["ff_ratio"] == pytest.approx(row["nf_ratio"], rel=1e-9)
        assert row["ff_ratio"] == pytest.approx(row["wf_ratio"], rel=1e-9)
        # measured ratio tracks the analytic nµ/(n+µ) within OPT rounding
        assert row["ff_ratio"] == pytest.approx(row["analytic"], rel=0.1)
    # ratio approaches µ as n grows
    for mu in (2.0, 4.0, 8.0):
        rows = [r for r in exp.rows if r["mu"] == mu]
        ratios = [r["ff_ratio"] for r in rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 0.75 * mu
    save_artifact("T3_universal_lb", exp.render())
