"""Benchmark-suite fixtures.

Every bench regenerates one of the paper's tables/figures (see the
experiment index in DESIGN.md §3).  The rendered artifact is written to
``benchmarks/output/<id>.txt`` so results persist after the run, and
timing is collected through pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(output_dir):
    """Write a rendered experiment table/figure to the output directory."""

    def _save(experiment_id: str, text: str) -> Path:
        path = output_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        return path

    return _save
