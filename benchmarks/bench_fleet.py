"""T7: heterogeneous fleet launch policies vs homogeneous baseline."""

from repro.experiments.fleet_exp import run_fleet_comparison


def test_fleet_comparison_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_fleet_comparison(num_sessions=300, rates=(2.0, 8.0)),
        rounds=1,
        iterations=1,
    )
    for rate in (2.0, 8.0):
        rows = {r["config"]: r for r in exp.rows if r["rate"] == rate}
        # the homogeneous baseline is normalised to 1
        assert rows["homogeneous"]["vs_homog"] == 1.0
        # small-first launch beats homogeneous on this workload shape
        # (many light sessions strand capacity on medium servers)
        assert rows["smallest-fitting"]["vs_homog"] < 1.0
        # always-large launch pays for stranded capacity at these loads
        assert rows["best-density"]["vs_homog"] > rows["smallest-fitting"]["vs_homog"]
    save_artifact("T7_fleet", exp.render())
