"""X6: resource augmentation sweep."""

from repro.experiments.augmentation_exp import run_augmentation


def test_augmentation_table(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_augmentation(), rounds=1, iterations=1)
    for row in exp.rows:
        # moderate augmentation always helps relative to ε = 0
        assert row["eps=0.25"] <= row["eps=0"] + 1e-9
    nf = next(r for r in exp.rows if "next-fit" in r["instance/alg"])
    # the §VIII gadget's 2µ-type ratio halves with 25% extra capacity
    assert nf["eps=0.25"] <= 0.6 * nf["eps=0"]
    # random workloads beat the unit-capacity adversary outright at ε = 1
    pois = next(r for r in exp.rows if r["instance/alg"].startswith("poisson"))
    assert pois["eps=1"] < 1.0
    save_artifact("X6_augmentation", exp.render())
