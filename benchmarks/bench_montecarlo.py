"""X7: expected competitive ratio vs load and µ (bootstrap CIs)."""

from repro.experiments.montecarlo import run_expected_ratio


def test_expected_ratio_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_expected_ratio(n=60, replications=10),
        rounds=1,
        iterations=1,
    )
    # FF dominates NF in the mean (noise tolerance at near-zero load,
    # strict at real load)
    points = {(r["mu"], r["load"]) for r in exp.rows}
    for mu, load in points:
        rows = {
            r["algorithm"]: r
            for r in exp.rows
            if r["mu"] == mu and r["load"] == load
        }
        assert rows["first-fit"]["mean_ratio"] <= rows["next-fit"]["mean_ratio"] + 0.01
        if load >= 2.0:
            assert rows["first-fit"]["mean_ratio"] < rows["next-fit"]["mean_ratio"]
    # ratios rise with µ for First Fit at fixed load
    for load in {l for _, l in points}:
        ff = sorted(
            (r["mu"], r["mean_ratio"])
            for r in exp.rows
            if r["algorithm"] == "first-fit" and r["load"] == load
        )
        assert ff[-1][1] >= ff[0][1] - 0.05
    save_artifact("X7_expected_ratio", exp.render())
