"""Performance benchmarks: packing throughput and OPT solver scaling.

Not a paper artifact — engineering benchmarks for the library itself
(events/second per algorithm, OPT_total cost as instances grow), so
regressions in the hot paths are visible.
"""

import pytest

from repro.algorithms import ALGORITHM_REGISTRY, make_algorithm
from repro.core.packing import run_packing
from repro.multidim import make_vector_algorithm, run_vector_packing, vector_workload
from repro.opt.opt_total import opt_total
from repro.workloads.random_workloads import poisson_workload

INSTANCE = poisson_workload(2000, seed=99, mu_target=8.0, arrival_rate=4.0)
SMALL = poisson_workload(60, seed=7, mu_target=6.0, arrival_rate=2.0)
VECTOR_INSTANCE = vector_workload(2000, seed=99, dimensions=2, arrival_rate=4.0)
# enough simultaneously open bins (~hundreds) that the default path
# activates the VectorFirstFitIndex mid-run
VECTOR_HIGHLOAD = vector_workload(2000, seed=99, dimensions=2, arrival_rate=200.0)


@pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
def test_packing_throughput(benchmark, name):
    """Pack 2000 jobs (4000 events) with each policy."""
    result = benchmark(lambda: run_packing(INSTANCE, make_algorithm(name)))
    assert result.num_bins > 0


@pytest.mark.parametrize("name", ["vector-first-fit", "vector-best-fit"])
def test_vector_packing_throughput(benchmark, name):
    """Pack 2000 two-dimensional jobs through the unified driver."""
    result = benchmark(
        lambda: run_vector_packing(VECTOR_INSTANCE, make_vector_algorithm(name))
    )
    assert result.num_bins > 0


@pytest.mark.parametrize("name", ["vector-first-fit", "vector-best-fit"])
def test_vector_packing_throughput_highload(benchmark, name):
    """High-load vector packing: exercises the indexed first-fit path."""
    result = benchmark(
        lambda: run_vector_packing(VECTOR_HIGHLOAD, make_vector_algorithm(name))
    )
    assert result.num_bins > 0


def test_streaming_replay_throughput(benchmark):
    """Replay the 2000-job instance through the service's push path."""
    from repro.service import StreamingEngine

    ordered = sorted(INSTANCE, key=lambda it: it.arrival)

    def run():
        engine = StreamingEngine.scalar(make_algorithm("first-fit"))
        for it in ordered:
            engine.submit(it)
        return engine.finish()

    result = benchmark(run)
    assert result.num_bins > 0


@pytest.mark.parametrize("fsync", ["never", "interval"])
def test_streaming_replay_with_wal_throughput(benchmark, fsync, tmp_path_factory):
    """The same replay with the write-ahead log on the request path."""
    from repro.service import DurableEngine, StreamingEngine, WriteAheadLog

    ordered = sorted(INSTANCE, key=lambda it: it.arrival)

    def run():
        directory = str(tmp_path_factory.mktemp(f"wal-{fsync}"))
        engine = DurableEngine(
            StreamingEngine.scalar(make_algorithm("first-fit")),
            WriteAheadLog(directory, fsync=fsync),
            auto_checkpoint=False,
        )
        for it in ordered:
            engine.submit(it)
        result = engine.finish()
        engine.close()
        return result

    result = benchmark(run)
    assert result.num_bins > 0


def test_opt_total_small_instance(benchmark):
    """Exact OPT_total on a 60-job instance (event-interval B&B)."""
    opt = benchmark(lambda: opt_total(SMALL))
    assert opt.exact


def test_opt_total_scaling_moderate(benchmark):
    inst = poisson_workload(150, seed=8, mu_target=6.0, arrival_rate=3.0)
    opt = benchmark.pedantic(lambda: opt_total(inst), rounds=2, iterations=1)
    assert opt.lower > 0
