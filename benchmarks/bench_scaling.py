"""Scaling benchmarks: how cost grows with instance size.

Not a paper artifact — empirical complexity curves for the library's two
hot paths, so a future change that regresses the asymptotics is caught:

- the packing driver is O(events · open bins) for Any Fit scans;
- ``opt_total`` is dominated by per-interval branch and bound, whose
  practical cost tracks the number of concurrently active items.
"""

import pytest

from repro.algorithms import FirstFit
from repro.core.packing import run_packing
from repro.opt.opt_total import opt_total
from repro.workloads.random_workloads import poisson_workload

SIZES = (500, 2000, 8000)


@pytest.mark.parametrize("n", SIZES)
def test_packing_scaling(benchmark, n):
    inst = poisson_workload(n, seed=11, mu_target=8.0, arrival_rate=4.0)
    result = benchmark.pedantic(
        lambda: run_packing(inst, FirstFit()), rounds=3, iterations=1
    )
    assert result.num_bins > 0


@pytest.mark.parametrize("n", (40, 80, 160))
def test_opt_total_scaling(benchmark, n):
    inst = poisson_workload(n, seed=12, mu_target=6.0, arrival_rate=3.0)
    opt = benchmark.pedantic(lambda: opt_total(inst), rounds=2, iterations=1)
    assert opt.lower > 0


def test_packing_scales_near_linearly(benchmark):
    """Wall-clock sanity: 16× the events should cost well under 100×.

    (The Any-Fit scan makes the driver superlinear in principle, but at
    cloud-realistic loads the open-bin count is bounded, so the observed
    growth must stay near-linear.)
    """
    import time

    def measure():
        times = {}
        for n in (500, 8000):
            inst = poisson_workload(n, seed=13, mu_target=8.0, arrival_rate=4.0)
            t0 = time.perf_counter()
            run_packing(inst, FirstFit())
            times[n] = time.perf_counter() - t0
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert times[8000] < 100 * max(times[500], 1e-4)
