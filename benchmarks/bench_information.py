"""X3: the price of information and of migration."""

from repro.experiments.information import run_information_price


def test_information_price_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_information_price(n=13, seeds=tuple(range(8))),
        rounds=1,
        iterations=1,
    )
    by = {r["model"]: r for r in exp.rows}
    # sandwich: repacking OPT (=1) ≤ offline exact ≤ online First Fit
    assert 1.0 - 1e-9 <= by["offline_exact"]["mean_vs_repack_opt"]
    assert (
        by["offline_exact"]["mean_vs_repack_opt"]
        <= by["first_fit"]["mean_vs_repack_opt"] + 1e-9
    )
    # the offline exact values are certified optima
    assert by["offline_exact"]["exact_certified"] is True
    # heuristic offline stays close to exact
    assert (
        by["offline_greedy_ls"]["mean_vs_repack_opt"]
        <= by["offline_exact"]["mean_vs_repack_opt"] + 0.25
    )
    save_artifact("X3_information_price", exp.render())
