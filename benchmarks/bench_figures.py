"""F1–F6: regenerate the paper's structural figures (DESIGN.md §3).

Each bench computes the figure's structure, asserts the invariant the
figure illustrates, and saves the ASCII rendering.
"""

import pytest

from repro.experiments.figures import (
    figure1_span,
    figure2_usage_periods,
    figure3_subperiods,
    figure4_supplier,
    figures56_nonintersection,
)


def test_figure1_span(benchmark, save_artifact):
    out = benchmark.pedantic(figure1_span, rounds=3, iterations=1)
    items = out.data
    # Figure 1's point: the span is the measure of the union, not the sum
    assert items.span < sum(it.duration for it in items)
    save_artifact("F1_span", out.rendering)


def test_figure2_usage_periods(benchmark, save_artifact):
    out = benchmark.pedantic(figure2_usage_periods, rounds=3, iterations=1)
    deco = out.data
    # Section IV identity: ΣW = span and U = V ⊎ W per bin
    assert deco.total_w == pytest.approx(deco.span)
    assert deco.total_v + deco.total_w == pytest.approx(deco.total_usage_time)
    save_artifact("F2_usage_periods", out.rendering)


def test_figure3_subperiods(benchmark, save_artifact):
    out = benchmark.pedantic(figure3_subperiods, rounds=1, iterations=1)
    subs = out.data
    # the split must produce both kinds of subperiods on this instance
    assert any(b.l_subperiods for b in subs)
    assert any(b.h_subperiods for b in subs)
    save_artifact("F3_subperiods", out.rendering)


def test_figure4_supplier(benchmark, save_artifact):
    out = benchmark.pedantic(figure4_supplier, rounds=1, iterations=1)
    analysis = out.data
    assert analysis.groups
    # supplier bins always have lower indices than their client bins
    for g in analysis.groups:
        assert g.supplier_index < g.bin_index
    save_artifact("F4_supplier", out.rendering)


def test_figures5_6_nonintersection(benchmark, save_artifact):
    out = benchmark.pedantic(
        figures56_nonintersection, kwargs={"seeds": tuple(range(12))},
        rounds=1, iterations=1,
    )
    assert out.data["violations"] == 0
    save_artifact("F5-F6_lemma2", out.rendering)
