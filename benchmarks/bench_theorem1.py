"""T1: First Fit competitive ratio vs the µ+4 bound (Theorem 1)."""

from repro.experiments.theorem1 import run_theorem1


def test_theorem1_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_theorem1(
            mus=(2.0, 4.0, 8.0, 16.0),
            adversarial_n=24,
            random_n=80,
            random_seeds=(1, 2, 3),
        ),
        rounds=1,
        iterations=1,
    )
    # headline claim: every measured ratio respects Theorem 1
    assert all(exp.column("within_bound"))
    # the adversarial family approaches the µ lower bound: ratio grows
    # monotonically in µ on the adversarial rows
    adv = [r["ratio_upper"] for r in exp.rows if r["workload"].startswith("adv")]
    assert adv == sorted(adv)
    # random workloads stay far below the bound (shape check)
    rnd = [r for r in exp.rows if r["workload"].startswith("poisson")]
    assert all(r["ratio_upper"] < r["bound(mu+4)"] / 2 for r in rnd)
    save_artifact("T1_theorem1", exp.render())
