"""T8: warm-server retention under hourly vs continuous billing."""

from repro.experiments.retention_exp import run_retention


def test_retention_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_retention(num_sessions=300, rates=(2.0, 8.0)),
        rounds=1,
        iterations=1,
    )
    for rate in (2.0, 8.0):
        rows = {
            (r["billing"], r["policy"]): r
            for r in exp.rows
            if r["rate"] == rate
        }
        # hour-boundary retention's hold is free under hourly billing;
        # reuse-induced placement drift keeps the system bill within a
        # couple of percent of no-retention and usually below it
        assert rows[("hourly", "hour-boundary")]["vs_none"] <= 1.02
        # and it actually reuses servers
        assert rows[("hourly", "hour-boundary")]["reuses"] > 0
        # any retention under continuous billing is a pure loss
        for policy in ("hour-boundary", "fixed-cooldown(0.25)", "fixed-cooldown(1)"):
            assert rows[("continuous", policy)]["vs_none"] >= 1.0 - 1e-9
    save_artifact("T8_retention", exp.render())
