"""X11: the anatomy of First Fit's cost."""

import pytest

from repro.experiments.anatomy import run_cost_anatomy


def test_cost_anatomy_table(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_cost_anatomy(), rounds=1, iterations=1)
    rows = {r["family"]: r for r in exp.rows}
    # shares partition the cost
    for r in exp.rows:
        total_share = r["span_share"] + r["overlap_h_share"] + r["overlap_l_share"]
        assert total_share == pytest.approx(1.0, abs=1e-6)
    # the adversarial gadget is almost pure l-time, and pays for it
    univ = rows["universal-lb"]
    assert univ["overlap_l_share"] > 0.8
    assert univ["ratio"] == max(r["ratio"] for r in exp.rows)
    # light load is span-dominated (any algorithm must pay it) and cheap
    light, heavy = rows["poisson-light"], rows["poisson-heavy"]
    assert light["span_share"] > heavy["span_share"]
    assert light["overlap_l_share"] < heavy["overlap_l_share"]
    assert light["ratio"] < heavy["ratio"]
    save_artifact("X11_cost_anatomy", exp.render())
