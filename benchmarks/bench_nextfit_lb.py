"""T2: the Section VIII Next Fit lower bound construction."""

import pytest

from repro.experiments.nextfit import run_nextfit_lower_bound


def test_nextfit_lower_bound_table(benchmark, save_artifact):
    exp = benchmark.pedantic(
        lambda: run_nextfit_lower_bound(ns=(4, 8, 16, 32, 64), mus=(2.0, 4.0, 8.0)),
        rounds=1,
        iterations=1,
    )
    for row in exp.rows:
        # measured NF ratio equals the paper's closed form nµ/(n/2+µ)
        assert row["nf_ratio"] == pytest.approx(row["analytic_ratio"], rel=1e-9)
        # and stays below the 2µ limit while approaching it
        assert row["nf_ratio"] < row["limit(2mu)"]
        # First Fit is dramatically better on the same instance
        assert row["ff_ratio"] < 0.5 * row["nf_ratio"] or row["n"] <= 4
    # convergence: the ratio is exactly 2µ·n/(n+2µ), so at n=64 it has
    # reached the n/(n+2µ) fraction of the 2µ limit
    for mu in (2.0, 4.0, 8.0):
        last = [r for r in exp.rows if r["mu"] == mu][-1]
        n = last["n"]
        assert last["nf_ratio"] > 2 * mu * (n / (n + 2 * mu)) * 0.999
    save_artifact("T2_nextfit_lb", exp.render())
