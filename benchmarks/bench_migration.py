"""X10: the adversary's migration budget."""

import pytest

from repro.experiments.migration_exp import run_migration_budget


def test_migration_budget_table(benchmark, save_artifact):
    exp = benchmark.pedantic(lambda: run_migration_budget(), rounds=1, iterations=1)
    for row in exp.rows:
        # the constructed schedule attains the OPT integral (witness)
        assert row["schedule"] == pytest.approx(row["repack_opt"], rel=1e-6)
        # sandwich: repack OPT ≤ offline non-migratory ≤ ... (heuristic,
        # so only the lower side is guaranteed); FF is a real packing
        assert row["offline_nonmigr"] >= row["repack_opt"] - 1e-6
        assert row["first_fit"] >= row["repack_opt"] - 1e-6
    # the adversary really migrates on mixed workloads
    poisson = next(r for r in exp.rows if r["family"].startswith("poisson"))
    assert poisson["migrations"] > 0
    # the instructive decomposition on the universal gadget: a
    # non-migratory *offline* solution nearly matches the repacking
    # adversary (it, too, consolidates the fillers), so the gadget's
    # damage is almost entirely the price of ONLINE-ness, not migration
    univ = next(r for r in exp.rows if r["family"].startswith("universal"))
    assert univ["migration_gain"] < 1.2
    assert univ["online_price"] > 2.0
    assert univ["online_price"] > univ["migration_gain"]
    save_artifact("X10_migration_budget", exp.render())
