"""Tests for the worst-case exploration engine."""

import pytest

from repro.adversary.explorer import ExplorationResult, explore_worst_case
from repro.algorithms import FirstFit, NextFit
from repro.core.items import Item, ItemList
from repro.workloads.adversarial import universal_lower_bound
from repro.workloads.random_workloads import poisson_workload


def small_seed():
    return poisson_workload(10, seed=4, mu_target=4.0, arrival_rate=2.0)


class TestExplorer:
    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            explore_worst_case(ItemList([]), FirstFit())

    def test_best_never_below_initial(self):
        res = explore_worst_case(small_seed(), FirstFit(), iterations=30, seed=1)
        assert res.best_ratio >= res.initial_ratio - 1e-12
        assert res.improvement >= 0.0

    def test_mu_cap_respected(self):
        res = explore_worst_case(
            small_seed(), FirstFit(), iterations=40, seed=2, mu_cap=4.0
        )
        assert res.best_instance.mu <= 4.0 + 1e-6

    def test_deterministic_given_seed(self):
        a = explore_worst_case(small_seed(), FirstFit(), iterations=25, seed=7)
        b = explore_worst_case(small_seed(), FirstFit(), iterations=25, seed=7)
        assert a.best_ratio == b.best_ratio
        assert a.accepted == b.accepted

    def test_instances_stay_valid(self):
        res = explore_worst_case(small_seed(), NextFit(), iterations=40, seed=3)
        # ItemList construction validates; additionally check durations
        inst = res.best_instance
        assert all(it.duration > 0 for it in inst)
        assert all(0 < it.size <= 1.0 for it in inst)

    def test_finds_improvement_from_gadget(self):
        """From the universal gadget the landscape has uphill moves."""
        seed = universal_lower_bound(6, 4.0)
        res = explore_worst_case(seed, FirstFit(), iterations=80, seed=0, mu_cap=4.0)
        assert res.accepted > 0

    def test_theorem1_never_falsified(self):
        """The search cannot push First Fit past µ+4."""
        for s in range(3):
            res = explore_worst_case(
                universal_lower_bound(6, 3.0),
                FirstFit(),
                iterations=60,
                seed=s,
                mu_cap=3.0,
            )
            assert res.best_ratio <= 3.0 + 4.0 + 1e-7
