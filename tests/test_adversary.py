"""Tests for the adaptive adversary game framework."""

import pytest

from repro.adversary import (
    AdaptiveAdversary,
    GameHistory,
    KeepAliveAdversary,
    PendingJob,
    play_game,
)
from repro.algorithms import (
    ALGORITHM_REGISTRY,
    FirstFit,
    NextFit,
    WorstFit,
    make_algorithm,
)
from repro.opt.opt_total import opt_total


class TestGameProtocol:
    def test_replay_consistency_first_fit(self):
        adv = KeepAliveAdversary(waves=3, k=4, mu=4.0)
        instance, result = play_game(adv, FirstFit())
        # reaching here means the live/replay consistency assert passed
        assert len(instance) == 3 * 4
        assert result.algorithm_name == "first-fit"

    @pytest.mark.parametrize(
        "name", ["first-fit", "best-fit", "worst-fit", "last-fit", "next-fit"]
    )
    def test_every_deterministic_policy_plays(self, name):
        adv = KeepAliveAdversary(waves=3, k=3, mu=3.0, bins_per_wave=2)
        instance, result = play_game(adv, make_algorithm(name))
        assert len(instance) == 3 * 3 * 2
        assert result.total_usage_time > 0

    def test_unfixed_departure_rejected(self):
        class Lazy(AdaptiveAdversary):
            def __init__(self):
                self.sent = False

            def next_arrival(self, history):
                if self.sent:
                    return None
                self.sent = True
                return PendingJob(0, 0.5, 0.0)

            def decide_departures(self, history, done):
                pass  # never fixes anything

        with pytest.raises(ValueError, match="without a valid departure"):
            play_game(Lazy(), FirstFit())

    def test_max_jobs_guard(self):
        class Flood(AdaptiveAdversary):
            def __init__(self):
                self.n = 0

            def next_arrival(self, history):
                job = PendingJob(self.n, 0.01, float(self.n))
                self.n += 1
                return job

            def decide_departures(self, history, done):
                for j in history.jobs:
                    if j.departure is None and (done or j.bin_index is not None):
                        j.departure = j.arrival + 1.0

        instance, _ = play_game(Flood(), FirstFit(), max_jobs=25)
        assert len(instance) == 25


class TestKeepAliveAdversary:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KeepAliveAdversary(0, 4, 4.0)
        with pytest.raises(ValueError):
            KeepAliveAdversary(3, 4, 1.0)
        with pytest.raises(ValueError):
            KeepAliveAdversary(3, 4, 4.0, spacing=0.5)

    def test_durations_respect_mu(self):
        adv = KeepAliveAdversary(waves=4, k=4, mu=6.0)
        instance, _ = play_game(adv, FirstFit())
        durations = {round(it.duration, 9) for it in instance}
        assert durations <= {1.0, 6.0}
        assert instance.mu == pytest.approx(6.0)

    def test_one_survivor_per_touched_bin(self):
        adv = KeepAliveAdversary(waves=3, k=4, mu=5.0, bins_per_wave=2)
        instance, result = play_game(adv, FirstFit())
        # per wave, survivors = number of distinct bins the wave touched
        by_wave: dict[int, set] = {}
        survivors: dict[int, set] = {}
        for it in instance:
            wave = it.item_id // (4 * 2)
            b = result.item_bin[it.item_id]
            by_wave.setdefault(wave, set()).add(b)
            if it.duration > 1.5:
                survivors.setdefault(wave, set()).add(b)
        for wave, bins in by_wave.items():
            assert survivors[wave] == bins

    def test_nextfit_suffers_more_than_firstfit(self):
        """Each policy gets its personal worst case; Next Fit's is worse."""
        ratios = {}
        for name in ("first-fit", "next-fit"):
            adv = KeepAliveAdversary(waves=4, k=4, mu=6.0, bins_per_wave=2)
            instance, result = play_game(adv, make_algorithm(name))
            opt = opt_total(instance, node_budget=100_000)
            ratios[name] = result.total_usage_time / opt.lower
        assert ratios["next-fit"] > ratios["first-fit"]

    def test_theorem1_still_respected(self):
        """Even the adaptive adversary cannot push FF past µ+4."""
        adv = KeepAliveAdversary(waves=5, k=4, mu=4.0, bins_per_wave=3)
        instance, result = play_game(adv, FirstFit())
        opt = opt_total(instance, node_budget=150_000)
        assert result.total_usage_time <= (instance.mu + 4.0) * opt.lower + 1e-7
