"""Integration tests: each registered experiment runs and has the shape
the paper predicts (small configurations for speed; the benchmark suite
runs the full configurations)."""

import math

import pytest

from repro.experiments import (
    EXPERIMENT_REGISTRY,
    figure1_span,
    figure2_usage_periods,
    figure3_subperiods,
    figure4_supplier,
    figures56_nonintersection,
    run_bestfit_staircase,
    run_bounds_table,
    run_cloud_gaming,
    run_constants_ablation,
    run_hff_threshold_ablation,
    run_multidim,
    run_nextfit_lower_bound,
    run_selection_ablation,
    run_theorem1,
    run_universal_lower_bound,
)


class TestRegistry:
    def test_all_ids_present(self):
        expected = {
            "F1", "F2", "F3", "F4", "F5-F6",
            "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
            "X1", "X2a", "X2b", "X2c", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11", "X12", "X13",
        }
        assert expected == set(EXPERIMENT_REGISTRY)


class TestFigures:
    def test_f1_span_rendering(self):
        out = figure1_span()
        assert "span" in out.rendering
        assert out.data.span == pytest.approx(5.0)

    def test_f2_shows_v_and_w(self):
        out = figure2_usage_periods()
        assert "V=" in out.rendering and "W=" in out.rendering
        deco = out.data
        assert deco.total_w == pytest.approx(deco.span)

    def test_f3_produces_subperiods(self):
        out = figure3_subperiods()
        assert any(b.l_subperiods for b in out.data)

    def test_f4_produces_groups(self):
        out = figure4_supplier()
        assert len(out.data.groups) > 0

    def test_f56_no_violations(self):
        out = figures56_nonintersection(seeds=(0, 1, 2, 3))
        assert out.data["violations"] == 0


class TestTheorem1Experiment:
    def test_all_rows_within_bound(self):
        exp = run_theorem1(mus=(2.0, 4.0), adversarial_n=10, random_n=40,
                           random_seeds=(1,), node_budget=30_000)
        assert all(exp.column("within_bound"))

    def test_adversarial_ratio_grows_with_mu(self):
        exp = run_theorem1(mus=(2.0, 8.0), adversarial_n=16, random_n=30,
                           random_seeds=(1,), node_budget=30_000)
        adv = [r for r in exp.rows if r["workload"].startswith("adversarial")]
        assert adv[1]["ratio_upper"] > adv[0]["ratio_upper"]


class TestNextFitExperiment:
    def test_nf_matches_analytic(self):
        exp = run_nextfit_lower_bound(ns=(4, 8), mus=(2.0,), node_budget=30_000)
        for row in exp.rows:
            assert row["nf_ratio"] == pytest.approx(row["analytic_ratio"], rel=1e-6)

    def test_nf_ratio_increases_toward_2mu(self):
        exp = run_nextfit_lower_bound(ns=(4, 16, 64), mus=(4.0,), node_budget=30_000)
        ratios = exp.column("nf_ratio")
        assert ratios == sorted(ratios)
        assert ratios[-1] <= 8.0 + 1e-9

    def test_ff_always_beats_nf(self):
        exp = run_nextfit_lower_bound(ns=(8, 16), mus=(2.0, 4.0), node_budget=30_000)
        for row in exp.rows:
            assert row["ff_ratio"] < row["nf_ratio"]


class TestLowerBoundExperiments:
    def test_universal_all_algorithms_equal(self):
        exp = run_universal_lower_bound(ns=(8,), mus=(4.0,), node_budget=30_000)
        row = exp.rows[0]
        assert row["ff_ratio"] == pytest.approx(row["bf_ratio"])
        assert row["ff_ratio"] == pytest.approx(row["nf_ratio"])

    def test_staircase_bf_worse_than_ff(self):
        exp = run_bestfit_staircase(ns=(24,), mus=(8.0,), node_budget=30_000)
        row = exp.rows[0]
        assert row["bf_ratio"] > row["ff_ratio"]
        assert row["bf_over_ff"] > 1.5


class TestBoundsTable:
    def test_measured_respects_analytic_upper(self):
        exp = run_bounds_table(mu=4.0, node_budget=30_000)
        for row in exp.rows:
            upper = row["analytic_upper"]
            if upper != "—":
                assert row["measured_worst"] <= float(upper) + 1e-6, row

    def test_first_fit_below_mu_plus_4(self):
        exp = run_bounds_table(mu=4.0, node_budget=30_000)
        ff = next(r for r in exp.rows if r["algorithm"] == "first-fit")
        assert ff["measured_worst"] <= 8.0


class TestCloudGamingExperiment:
    def test_shape(self):
        exp = run_cloud_gaming(num_sessions=80, rates=(2.0,), seed=1)
        assert len(exp.rows) == 2 * 5  # 2 billings × 5 algorithms
        ff_rows = [r for r in exp.rows if r["algorithm"] == "first-fit"]
        assert all(r["vs_ff"] == pytest.approx(1.0) for r in ff_rows)

    def test_nf_never_cheaper_than_ff(self):
        exp = run_cloud_gaming(num_sessions=150, rates=(4.0,), seed=2)
        nf = [r for r in exp.rows if r["algorithm"] == "next-fit"]
        assert all(r["vs_ff"] >= 1.0 - 1e-9 for r in nf)


class TestMultidimExperiment:
    def test_shape_and_ratios(self):
        exp = run_multidim(n=50, seeds=(1,), dimensions=(1, 2), correlations=(1.0,))
        assert all(r["mean_ratio"] >= 1.0 - 1e-9 for r in exp.rows)

    def test_more_dimensions_higher_ratio_for_ff(self):
        exp = run_multidim(n=80, seeds=(1, 2), dimensions=(1, 3), correlations=())
        ff = [r for r in exp.rows if r["algorithm"] == "vector-first-fit"]
        assert ff[1]["mean_ratio"] >= ff[0]["mean_ratio"] - 0.05


class TestAblation:
    def test_selection_ablation_runs(self):
        exp = run_selection_ablation(mu=4.0, node_budget=20_000)
        names = {r["selection"] for r in exp.rows}
        assert "first-fit" in names and "best-fit" in names

    def test_hff_threshold_ablation_includes_plain_ff(self):
        exp = run_hff_threshold_ablation(
            mu=4.0, thresholds=((0.5,), ()), seeds=(1,), node_budget=20_000
        )
        assert any(r["classes"] == 1 for r in exp.rows)

    def test_constants_ablation_reconstructed_is_clean(self):
        exp = run_constants_ablation(seeds=tuple(range(8)), n=50)
        rec = next(r for r in exp.rows if "reconstructed" in r["constants"])
        assert rec["violating_instances"] == 0
