"""Tests for the experiment harness."""

import pytest

from repro.algorithms import FirstFit
from repro.core.items import Item, ItemList
from repro.experiments.harness import (
    ExperimentResult,
    format_table,
    measure_ratio,
)
from repro.opt.opt_total import opt_total


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_columns_aligned_and_complete(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0] and "c" in lines[0]
        assert "2.500" in text
        assert "x" in text

    def test_floats_fixed_precision(self):
        assert "0.333" in format_table([{"v": 1 / 3}])


class TestExperimentResult:
    def test_render_contains_id_and_notes(self):
        exp = ExperimentResult("T9", "demo", rows=[{"x": 1}], notes="a note")
        out = exp.render()
        assert "T9" in out and "demo" in out and "a note" in out

    def test_column_extraction(self):
        exp = ExperimentResult("T9", "demo", rows=[{"x": 1}, {"x": 2}, {"y": 3}])
        assert exp.column("x") == [1, 2, None]
        assert exp.column_names() == ["x", "y"]


class TestMeasureRatio:
    def test_against_known_instance(self):
        items = ItemList([Item(0, 0.5, 0.0, 3.0)])
        m = measure_ratio(items, FirstFit())
        assert m.ratio_upper == pytest.approx(1.0)
        assert m.ratio_lower == pytest.approx(1.0)
        assert m.mu == 1.0

    def test_shared_opt_reused(self):
        items = ItemList([Item(0, 0.5, 0.0, 3.0), Item(1, 0.6, 1.0, 4.0)])
        opt = opt_total(items)
        m = measure_ratio(items, FirstFit(), opt=opt)
        assert m.opt is opt

    def test_ratio_ordering(self):
        items = ItemList([Item(i, 0.4, 0.0, 2.0) for i in range(5)])
        m = measure_ratio(items, FirstFit())
        assert m.ratio_lower <= m.ratio_upper + 1e-12
