"""Tests for the declarative experiment framework (spec/runner/cache).

Covers the refactor's equivalence guarantees:

- golden tests pin the rendered output of representative experiments to
  their pre-refactor captures, byte for byte, through the spec runner,
- the registry smoke suite runs all 27 specs under ``profile="smoke"``
  and round-trips every result through the JSON artifact format,
- the cache serves a second run entirely from artifacts,
- the report order follows the natural DESIGN.md index, and
- two reports with the same stamp are byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import (
    EXPERIMENT_ORDER,
    EXPERIMENT_REGISTRY,
    SPEC_REGISTRY,
    ExperimentRunner,
    FigureOutput,
    ResultCache,
)
from repro.experiments.runner import (
    artifact_document,
    code_fingerprint,
    result_from_json,
    result_to_json,
)
from repro.experiments.report import (
    generate_report,
    resolve_stamp,
    run_all_experiments,
)

GOLDEN_DIR = Path(__file__).parent.parent / "data" / "experiments_golden"

#: the exact configurations the goldens were captured at (pre-refactor)
GOLDEN_CONFIGS = {
    "T1": dict(mus=(2.0, 4.0), adversarial_n=10, random_n=40,
               random_seeds=(1,), node_budget=30_000),
    "T5": dict(mu=4.0, algorithms=("first-fit", "next-fit", "best-fit"),
               node_budget=8_000),
    "X1": dict(n=50, seeds=(1, 2), dimensions=(1, 2), correlations=(1.0,)),
    "X7": dict(n=25, replications=3, loads=(2.0,), mus=(8.0,),
               algorithms=("first-fit", "next-fit"), node_budget=8_000),
    "F5-F6": dict(seeds=(0, 1, 2, 3), n=40),
}


def _rendered(result) -> str:
    if isinstance(result, FigureOutput):
        return result.rendering
    return result.render()


class TestGoldenEquivalence:
    """The refactored runner reproduces pre-refactor outputs exactly."""

    @pytest.mark.parametrize("eid", sorted(GOLDEN_CONFIGS))
    def test_wrapper_matches_golden(self, eid):
        golden = (GOLDEN_DIR / f"{eid}.txt").read_text()
        result = EXPERIMENT_REGISTRY[eid](**GOLDEN_CONFIGS[eid])
        assert _rendered(result) + "\n" == golden

    @pytest.mark.parametrize("eid", ["T5", "X1"])
    def test_sharded_run_matches_golden(self, eid):
        golden = (GOLDEN_DIR / f"{eid}.txt").read_text()
        runner = ExperimentRunner(workers=2)
        result = runner.run(SPEC_REGISTRY[eid], GOLDEN_CONFIGS[eid])
        assert _rendered(result) + "\n" == golden


class TestRegistrySmoke:
    """Every spec completes under the smoke profile and round-trips."""

    @pytest.mark.parametrize("eid", list(EXPERIMENT_ORDER))
    def test_smoke_run_and_json_round_trip(self, eid):
        spec = SPEC_REGISTRY[eid]
        params = spec.resolve(profile="smoke")
        result = spec.run(params)
        rendered = _rendered(result)
        assert rendered.strip()
        # serialize → through real JSON text → deserialize → re-render
        doc = json.loads(json.dumps(result_to_json(result)))
        restored = result_from_json(doc)
        assert _rendered(restored) == rendered

    def test_registries_agree(self):
        assert set(EXPERIMENT_REGISTRY) == set(SPEC_REGISTRY)
        for eid, spec in SPEC_REGISTRY.items():
            assert spec.id == eid


class TestNaturalOrder:
    """Satellite: report order is the DESIGN.md index, not sorted()."""

    def test_experiment_order_is_natural(self):
        assert EXPERIMENT_ORDER == (
            "F1", "F2", "F3", "F4", "F5-F6",
            "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
            "X1", "X2a", "X2b", "X2c", "X3", "X4", "X5", "X6",
            "X7", "X8", "X9", "X10", "X11", "X12", "X13",
        )
        # the historical bug: lexicographic order interleaves the index
        assert list(EXPERIMENT_ORDER) != sorted(EXPERIMENT_ORDER)

    def test_run_all_experiments_orders_naturally(self):
        # pass ids out of order; results must come back in index order
        results = run_all_experiments(
            only=("X1", "T1", "F5-F6"), profile="smoke"
        )
        assert list(results) == ["F5-F6", "T1", "X1"]

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment ids: T99"):
            run_all_experiments(only=("T99",))


class TestResultCache:
    def test_second_run_served_from_cache(self, tmp_path):
        ids = ("F1", "T1", "X1")
        requests = [(SPEC_REGISTRY[eid], None) for eid in ids]
        first = ExperimentRunner(
            workers=None, cache_dir=tmp_path, resume=True
        ).run_many(requests, profile="smoke")
        assert first.cache_hits == 0
        assert first.computed == len(ids)
        second = ExperimentRunner(
            workers=None, cache_dir=tmp_path, resume=True
        ).run_many(requests, profile="smoke")
        assert second.cache_hits == len(ids)  # ≥90% criterion: 100%
        assert second.computed == 0
        for eid in ids:
            assert _rendered(second.results()[eid]) == _rendered(
                first.results()[eid]
            )

    def test_param_change_misses_cache(self, tmp_path):
        spec = SPEC_REGISTRY["F5-F6"]
        runner = ExperimentRunner(cache_dir=tmp_path, resume=True)
        runner.run(spec, {"seeds": (0,), "n": 30})
        summary = runner.run_many(
            [(spec, {"seeds": (0, 1), "n": 30})]
        )
        assert summary.cache_hits == 0

    def test_unreadable_artifact_is_a_miss(self, tmp_path):
        spec = SPEC_REGISTRY["F1"]
        cache = ResultCache(tmp_path)
        params = spec.resolve(profile="smoke")
        path = cache.store(spec, params, spec.run(params))
        path.write_text("{not json")
        assert cache.load(spec, params) is None

    def test_artifact_document_provenance(self, tmp_path):
        spec = SPEC_REGISTRY["F1"]
        params = spec.resolve()
        doc = artifact_document(spec, params, spec.run(params))
        assert doc["experiment"] == "F1"
        assert doc["fingerprint"] == code_fingerprint()
        assert doc["module"] == spec.module
        # the document is valid JSON end to end
        json.dumps(doc)


class TestReportDeterminism:
    """Satellite: byte-reproducible `repro report`."""

    def test_same_stamp_same_bytes(self, tmp_path):
        kwargs = dict(
            only=("F1", "F5-F6"), profile="smoke", stamp="2026-01-01 00:00:00"
        )
        a = generate_report(tmp_path / "a.md", **kwargs)
        b = generate_report(tmp_path / "b.md", **kwargs)
        assert a.read_bytes() == b.read_bytes()
        assert "Generated 2026-01-01 00:00:00" in a.read_text()

    def test_source_date_epoch(self, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "0")
        assert resolve_stamp() == "1970-01-01 00:00:00"
        assert resolve_stamp("fixed") == "fixed"

    def test_report_resumes_from_cache(self, tmp_path):
        kwargs = dict(
            only=("F1", "T1"), profile="smoke", stamp="s",
            cache_dir=tmp_path / "cache", resume=True,
        )
        from repro.experiments.report import generate_report_summary

        _, first = generate_report_summary(tmp_path / "a.md", **kwargs)
        path_b, second = generate_report_summary(tmp_path / "b.md", **kwargs)
        assert first.cache_hits == 0
        assert second.cache_hits == 2
        assert "cache hits: 2/2" in second.render()
        assert (tmp_path / "a.md").read_bytes() == path_b.read_bytes()
