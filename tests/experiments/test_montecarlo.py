"""Tests for the Monte Carlo expected-ratio experiment."""

import numpy as np
import pytest

from repro.experiments.montecarlo import bootstrap_ci, run_expected_ratio


class TestBootstrapCI:
    def test_contains_mean_of_constant(self):
        lo, hi = bootstrap_ci(np.full(20, 3.0))
        assert lo == pytest.approx(3.0)
        assert hi == pytest.approx(3.0)

    def test_interval_ordering(self):
        rng = np.random.default_rng(1)
        lo, hi = bootstrap_ci(rng.normal(5.0, 1.0, 50))
        assert lo <= hi
        assert 4.0 < lo < 6.0 and 4.0 < hi < 6.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))

    def test_deterministic(self):
        xs = np.arange(30, dtype=float)
        assert bootstrap_ci(xs) == bootstrap_ci(xs)


class TestExpectedRatio:
    @pytest.fixture(scope="class")
    def exp(self):
        return run_expected_ratio(
            n=40, replications=6, loads=(1.0, 4.0), mus=(2.0, 8.0),
            node_budget=30_000,
        )

    def test_ci_brackets_mean(self, exp):
        for r in exp.rows:
            assert r["ci95_lo"] <= r["mean_ratio"] + 1e-9
            assert r["mean_ratio"] <= r["ci95_hi"] + 1e-9
            assert r["mean_ratio"] <= r["max_ratio"] + 1e-9

    def test_all_ratios_at_least_one(self, exp):
        assert all(r["mean_ratio"] >= 1.0 - 1e-9 for r in exp.rows)

    def test_first_fit_never_worse_than_next_fit_in_mean(self, exp):
        # at near-zero load the two coincide up to sampling noise; at
        # real load First Fit dominates strictly
        for mu in (2.0, 8.0):
            for load in (1.0, 4.0):
                rows = {
                    r["algorithm"]: r["mean_ratio"]
                    for r in exp.rows
                    if r["mu"] == mu and r["load"] == load
                }
                assert rows["first-fit"] <= rows["next-fit"] + 0.01
                if load >= 4.0:
                    assert rows["first-fit"] < rows["next-fit"]

    def test_ratio_grows_with_mu_for_ff(self, exp):
        for load in (1.0, 4.0):
            ff = {
                r["mu"]: r["mean_ratio"]
                for r in exp.rows
                if r["algorithm"] == "first-fit" and r["load"] == load
            }
            assert ff[8.0] >= ff[2.0] - 0.05
