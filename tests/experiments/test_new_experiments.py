"""Integration tests for the extension experiments (X3, X4, X5, T7)."""

import pytest

from repro.experiments import EXPERIMENT_REGISTRY
from repro.experiments.adaptive import run_adaptive_adversary
from repro.experiments.exploration import run_worst_case_search
from repro.experiments.fleet_exp import run_fleet_comparison
from repro.experiments.information import run_information_price


class TestRegistryExtensions:
    def test_new_ids_registered(self):
        assert {"X3", "X4", "X5", "T7"} <= set(EXPERIMENT_REGISTRY)


class TestInformationPrice:
    def test_sandwich_ordering(self):
        exp = run_information_price(n=10, seeds=(0, 1, 2), node_budget=200_000)
        by = {r["model"]: r["mean_vs_repack_opt"] for r in exp.rows}
        assert 1.0 - 1e-9 <= by["offline_exact"]
        assert by["offline_exact"] <= by["first_fit"] + 1e-9
        assert by["offline_exact"] <= by["offline_greedy_ls"] + 1e-9

    def test_exact_certified(self):
        exp = run_information_price(n=9, seeds=(3,), node_budget=200_000)
        rec = next(r for r in exp.rows if r["model"] == "offline_exact")
        assert rec["exact_certified"] is True


class TestAdaptiveAdversary:
    def test_nextfit_hurt_most(self):
        exp = run_adaptive_adversary(
            waves=4, k=4, bins_per_wave=2, mus=(4.0,), node_budget=80_000
        )
        rows = {r["policy"]: r["ratio"] for r in exp.rows}
        assert rows["next-fit"] == max(rows.values())

    def test_bounds_respected(self):
        exp = run_adaptive_adversary(
            waves=4, k=4, bins_per_wave=2, mus=(4.0,), node_budget=80_000
        )
        for r in exp.rows:
            if r["policy"] == "first-fit":
                assert r["ratio"] <= r["mu"] + 4.0 + 1e-9


class TestWorstCaseSearch:
    def test_never_falsifies(self):
        exp = run_worst_case_search(mu=3.0, iterations=40, seeds=(0,))
        assert all(exp.column("within_bound"))

    def test_reports_improvement_column(self):
        exp = run_worst_case_search(mu=3.0, iterations=40, seeds=(0,))
        assert all(r["improvement"] >= 0.0 for r in exp.rows)


class TestFleetComparison:
    def test_baseline_normalised(self):
        exp = run_fleet_comparison(num_sessions=120, rates=(4.0,), seed=2)
        homog = [r for r in exp.rows if r["config"] == "homogeneous"]
        assert all(r["vs_homog"] == pytest.approx(1.0) for r in homog)

    def test_all_configs_cover_workload(self):
        exp = run_fleet_comparison(num_sessions=120, rates=(4.0,), seed=2)
        assert {r["config"] for r in exp.rows} == {
            "homogeneous",
            "smallest-fitting",
            "cheapest-fitting",
            "best-density",
        }
