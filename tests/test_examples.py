"""End-to-end: every example script runs without error.

Examples are the public face of the library; a broken example is a
broken release.  Each is executed in-process via runpy with stdout
captured (they are deterministic and finish in seconds).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # each example prints a substantive report


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "cloud_gaming",
        "adversarial_showdown",
        "proof_walkthrough",
        "multidim_allocation",
        "streaming_monitor",
        "capacity_planning",
        "offline_vs_online",
    } <= names
