"""Tests for the offline non-migratory model and solvers."""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit, make_algorithm, ALGORITHM_REGISTRY
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.offline import (
    Assignment,
    exact_offline,
    greedy_offline,
    group_cost,
    group_feasible,
    local_search,
    marginal_cost,
    max_level,
)
from repro.opt.opt_total import opt_total

from .conftest import item_lists


def items_(*tuples):
    return [Item(i, s, a, d) for i, (s, a, d) in enumerate(tuples)]


class TestGroupPrimitives:
    def test_max_level_overlap(self):
        g = items_((0.5, 0, 2), (0.4, 1, 3))
        assert max_level(g) == pytest.approx(0.9)

    def test_max_level_touching_intervals(self):
        # [0,1) and [1,2): never concurrent (departures first at ties)
        g = items_((0.8, 0, 1), (0.8, 1, 2))
        assert max_level(g) == pytest.approx(0.8)

    def test_group_feasible(self):
        assert group_feasible(items_((0.5, 0, 2), (0.5, 1, 3)))
        assert not group_feasible(items_((0.6, 0, 2), (0.6, 1, 3)))

    def test_group_cost_is_union(self):
        g = items_((0.1, 0, 2), (0.1, 1, 3), (0.1, 5, 6))
        assert group_cost(g) == pytest.approx(4.0)

    def test_marginal_cost(self):
        g = items_((0.1, 0, 2))
        new = Item(9, 0.1, 1.0, 5.0)
        assert marginal_cost(g, new) == pytest.approx(3.0)
        inside = Item(10, 0.1, 0.5, 1.5)
        assert marginal_cost(g, inside) == pytest.approx(0.0)


class TestAssignment:
    def test_validate_accepts_good(self):
        items = ItemList(items_((0.5, 0, 2), (0.5, 0, 2)))
        a = Assignment(items, [[items[0], items[1]]])
        a.validate()
        assert a.is_feasible()

    def test_validate_rejects_missing_item(self):
        items = ItemList(items_((0.5, 0, 2), (0.5, 0, 2)))
        a = Assignment(items, [[items[0]]])
        with pytest.raises(ValueError, match="cover"):
            a.validate()

    def test_validate_rejects_duplicate(self):
        items = ItemList(items_((0.5, 0, 2), (0.5, 0, 2)))
        a = Assignment(items, [[items[0], items[0]], [items[1]]])
        with pytest.raises(ValueError, match="more than one"):
            a.validate()

    def test_validate_rejects_overfull_group(self):
        items = ItemList(items_((0.7, 0, 2), (0.7, 1, 3)))
        a = Assignment(items, [[items[0], items[1]]])
        with pytest.raises(ValueError, match="peaks"):
            a.validate()

    def test_cost_with_gap_counts_union(self):
        items = ItemList(items_((0.1, 0, 1), (0.1, 5, 6)))
        a = Assignment(items, [[items[0], items[1]]])
        # reopening: the idle gap [1,5) is not billed
        assert a.cost() == pytest.approx(2.0)


class TestExactSolver:
    def test_trivial(self):
        items = ItemList(items_((0.5, 0, 2)))
        a, certified = exact_offline(items)
        assert certified
        assert a.cost() == pytest.approx(2.0)

    def test_consolidation_optimal(self):
        # two tiny concurrent items: one group, cost = union = 3
        items = ItemList(items_((0.1, 0, 2), (0.1, 1, 3)))
        a, certified = exact_offline(items)
        assert certified
        assert a.cost() == pytest.approx(3.0)
        assert a.num_groups == 1

    def test_conflict_forces_two_groups(self):
        items = ItemList(items_((0.8, 0, 2), (0.8, 1, 3)))
        a, certified = exact_offline(items)
        assert certified
        assert a.num_groups == 2
        assert a.cost() == pytest.approx(4.0)

    def test_exact_beats_or_ties_greedy(self):
        items = ItemList(items_(
            (0.5, 0, 4), (0.5, 0, 1), (0.5, 2, 3), (0.3, 0.5, 3.5), (0.6, 1.2, 2.2)
        ))
        exact, certified = exact_offline(items)
        assert certified
        greedy = greedy_offline(items)
        assert exact.cost() <= greedy.cost() + 1e-9

    def test_budget_exhaustion_still_valid(self):
        items = ItemList(items_(*[(0.3, i * 0.2, i * 0.2 + 2) for i in range(12)]))
        a, certified = exact_offline(items, node_budget=30)
        a.validate()  # even uncertified, the result is feasible

    @given(item_lists(max_items=8))
    @settings(max_examples=25, deadline=None)
    def test_sandwich_property(self, items):
        """repacking OPT ≤ offline exact ≤ every online algorithm."""
        exact, certified = exact_offline(items)
        assert certified
        exact.validate()
        opt = opt_total(items)
        assert opt.lower <= exact.cost() + 1e-6
        ff = run_packing(items, FirstFit())
        assert exact.cost() <= ff.total_usage_time + 1e-6


class TestGreedyAndLocalSearch:
    @given(item_lists(max_items=20))
    @settings(max_examples=40, deadline=None)
    def test_greedy_always_feasible(self, items):
        a = greedy_offline(items)
        a.validate()

    @given(item_lists(max_items=16))
    @settings(max_examples=30, deadline=None)
    def test_local_search_never_worse_and_feasible(self, items):
        a = greedy_offline(items)
        improved = local_search(a)
        improved.validate()
        assert improved.cost() <= a.cost() + 1e-9

    def test_local_search_finds_an_improvement(self):
        # greedy (longest first) makes a recoverable mistake here:
        # long A [0,10) 0.5; long B [0,10) 0.5 join A (full);
        # C [2,3) 0.6 needs its own group; D [4,5) 0.6 joins C's group
        # at zero extension? construct a case where moving helps:
        items = ItemList(items_(
            (0.5, 0, 10), (0.5, 0, 10), (0.6, 2, 3), (0.6, 2.5, 3.5)
        ))
        a = greedy_offline(items)
        improved = local_search(a)
        assert improved.cost() <= a.cost() + 1e-9

    def test_greedy_consolidates_nested_jobs(self):
        items = ItemList(items_((0.5, 0, 10), (0.4, 2, 4), (0.4, 5, 7)))
        a = greedy_offline(items)
        assert a.num_groups == 1
        assert a.cost() == pytest.approx(10.0)
