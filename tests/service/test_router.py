"""The consistent-hash router: fleet ≡ standalone shards ≡ batch engine.

The fleet tentpole's load-bearing guarantee is differential: a 2-shard
fleet driven through the router leaves each shard's durable state —
WAL bytes, checkpoint bytes, engine snapshot, metrics — **bit-identical**
to a standalone single-shard service fed that shard's key-partitioned
subsequence directly, which in turn matches the batch engine on the
same subsequence.  On top sit the router's own behaviours: protocol
hardening with the service's error taxonomy, shard-labelled metrics
aggregation, live handoff that loses no accepted request, and survival
of a worker killed mid-stream (the link window + dedup replay).
"""

from __future__ import annotations

import asyncio
import json
import os
import random

import pytest

from repro.algorithms import make_algorithm
from repro.core.packing import run_packing
from repro.service import (
    AllocationService,
    HashRing,
    MetricsRegistry,
    RetryPolicy,
    ShardRouter,
    StreamingEngine,
    partition_items,
    recover,
    route_key,
    run_loadgen,
    tenantize,
)
from repro.service import protocol as wire
from repro.service.snapshot import dumps
from repro.workloads import poisson_workload

N_JOBS = 240
TENANTS = 8
SHARDS = 2


def make_engine():
    return StreamingEngine.scalar(
        make_algorithm("first-fit"), metrics=MetricsRegistry()
    )


def trace():
    items = poisson_workload(N_JOBS, seed=23, mu_target=8.0, arrival_rate=6.0)
    return sorted(items, key=lambda it: it.arrival)


def durable_files(directory) -> dict[str, bytes]:
    """name -> bytes of the WAL segments and checkpoints (identity files
    like MANIFEST are deliberately outside the durable byte stream)."""
    out = {}
    for name in sorted(os.listdir(directory)):
        if name.startswith(("wal-", "checkpoint-")):
            with open(os.path.join(directory, name), "rb") as f:
                out[name] = f.read()
    return out


# -- the ring -----------------------------------------------------------------
def test_ring_is_deterministic_across_instances():
    a, b = HashRing(4), HashRing(4)
    keys = list(range(1000))
    assert [a.node_for_key(k) for k in keys] == [b.node_for_key(k) for k in keys]
    with pytest.raises(ValueError):
        HashRing(0)


def test_ring_spreads_and_mostly_persists_on_resize():
    ring4, ring5 = HashRing(4), HashRing(5)
    keys = list(range(4000))
    owners4 = [ring4.node_for_key(k) for k in keys]
    from collections import Counter

    spread = Counter(owners4)
    assert len(spread) == 4
    assert min(spread.values()) > len(keys) * 0.1  # no starving shard
    moved = sum(
        1 for k, o in zip(keys, owners4) if ring5.node_for_key(k) != o
    )
    # consistent hashing: growing 4 -> 5 moves roughly 1/5 of the keys,
    # nowhere near the ~4/5 a modulo mapping would reshuffle
    assert moved / len(keys) < 0.45


def test_ring_single_vnode_still_covers_every_key():
    ring = HashRing(3, replicas=1)
    owners = {ring.node_for_key(k) for k in range(2000)}
    assert owners <= {0, 1, 2}
    # with one vnode per node every key must still land somewhere valid,
    # including keys hashing past the highest point (the wraparound arc)
    assert len(owners) >= 1
    with pytest.raises(ValueError):
        HashRing(3, replicas=0)


def test_ring_membership_edge_cases():
    ring = HashRing(2)
    assert ring.members == frozenset({0, 1})
    ring.remove_node(1)
    assert ring.members == frozenset({0})
    # the last member can never leave — keys must always map somewhere
    with pytest.raises(ValueError, match="last member"):
        ring.remove_node(0)
    # removing a node that is not on the ring is a caller bug
    with pytest.raises(KeyError):
        ring.remove_node(7)
    assert ring.node_for_key(12345) == 0  # single-member shortcut holds


def test_ring_add_remove_readd_restores_the_exact_mapping():
    ring = HashRing(4)
    keys = list(range(3000))
    before = [ring.node_for_key(k) for k in keys]
    ring.remove_node(2)
    assert all(ring.node_for_key(k) != 2 for k in keys)
    ring.add_node(2)
    assert [ring.node_for_key(k) for k in keys] == before
    # re-adding an existing member is an idempotent no-op
    ring.add_node(2)
    assert [ring.node_for_key(k) for k in keys] == before
    assert ring.num_nodes == 4


@pytest.mark.parametrize("n", [2, 4, 8])
def test_ring_resize_moves_at_most_its_fair_share(n):
    """Property: growing N -> N+1 moves ~1/(N+1) of the keys, not more.

    The bound is 1/(N+1) plus generous slack for vnode-placement
    variance at 64 replicas — far below the (N-1)/N a modulo mapping
    reshuffles, which is the failure mode this guards against.
    """
    small, big = HashRing(n), HashRing(n + 1)
    keys = list(range(6000))
    moved = sum(1 for k in keys if small.node_for_key(k) != big.node_for_key(k))
    fair = 1.0 / (n + 1)
    assert moved / len(keys) < fair + 0.15
    # and every moved key moved *to the new node*, never between old ones
    for k in keys:
        a, b = small.node_for_key(k), big.node_for_key(k)
        if a != b:
            assert b == n


def test_partition_items_matches_route_key():
    items = tenantize(trace(), TENANTS)
    parts = partition_items(items, SHARDS, tenants=TENANTS)
    assert sum(len(p) for p in parts) == len(items)
    ring = HashRing(SHARDS)
    for shard, part in enumerate(parts):
        for it in part:
            assert ring.node_for_key(route_key(it.item_id, TENANTS)) == shard
    # per-shard order is the global submission order restricted to the shard
    for part in parts:
        arrivals = [it.arrival for it in part]
        assert arrivals == sorted(arrivals)


def test_tenantize_keys_are_stable_and_unique():
    items = trace()
    a = tenantize(items, TENANTS)
    b = tenantize(items, TENANTS)
    assert [it.item_id for it in a] == [it.item_id for it in b]
    ids = [it.item_id for it in a]
    assert len(set(ids)) == len(ids)
    assert {it.item_id % TENANTS for it in a} <= set(range(TENANTS))
    # only the ids change
    assert [(it.size, it.arrival, it.departure) for it in a] == [
        (it.size, it.arrival, it.departure) for it in items
    ]


# -- in-process fleet plumbing ------------------------------------------------
class Fleet:
    """N durable in-process services behind one router."""

    def __init__(self, tmp_path, prefix, shards=SHARDS, tenants=TENANTS,
                 checkpoint_every=1000):
        self.dirs = [str(tmp_path / f"{prefix}-{i}") for i in range(shards)]
        self.checkpoint_every = checkpoint_every
        self.tenants = tenants
        self.engines = [None] * shards
        self.services = [None] * shards
        self.router = None
        self.front = None

    def boot_shard(self, i):
        engine, _ = recover(
            self.dirs[i],
            engine_builder=make_engine,
            metrics=MetricsRegistry(),
            fsync="never",
            checkpoint_every=self.checkpoint_every,
        )
        self.engines[i] = engine
        self.services[i] = AllocationService(engine, quiet=True)
        return self.services[i]

    async def start(self, handoff_callback=None):
        ports = []
        for i in range(len(self.dirs)):
            self.boot_shard(i)
            ports.append(await self.services[i].start("127.0.0.1", 0))
        self.router = ShardRouter(
            [("127.0.0.1", p) for p in ports],
            tenants=self.tenants,
            reconnect_wait=10.0,
            handoff_callback=handoff_callback,
        )
        await self.router.connect()
        self.front = await self.router.start("127.0.0.1", 0)
        return self.front

    async def stop(self):
        self.router.shutdown()
        await self.router.wait_closed()
        for service in self.services:
            service._shutdown.set()
            await service.wait_closed()
        for engine in self.engines:
            engine.close()


# -- the differential ---------------------------------------------------------
async def json_call(port, *docs):
    """Send JSON ops on one throwaway connection; returns the replies."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    out = []
    for doc in docs:
        writer.write((json.dumps(doc) + "\n").encode())
        await writer.drain()
        out.append(json.loads(await reader.readline()))
    writer.close()
    return out


def standalone_run(wal_dir, part, loadgen_kwargs):
    """One shard's subsequence against a plain single service.

    After the drain an explicit ``checkpoint`` op is cut, mirroring the
    fleet run — both sides then hold a checkpoint at the same WAL seq,
    which the test compares byte-for-byte.  (Automatic mid-run
    checkpoint *cadence* is allowed to differ: it follows group-commit
    boundaries, which the router's batch splitting legitimately moves.)
    """

    async def go():
        engine, _ = recover(
            wal_dir, engine_builder=make_engine, fsync="never",
        )
        service = AllocationService(engine, quiet=True)
        port = await service.start("127.0.0.1", 0)
        waiter = asyncio.ensure_future(service.wait_closed())
        report = await run_loadgen(part, port=port, **loadgen_kwargs)
        checkpoint, _ = await json_call(
            port, {"op": "checkpoint"}, {"op": "shutdown"}
        )
        assert checkpoint["ok"], checkpoint
        await waiter
        return engine, report

    engine, report = asyncio.run(go())
    snapshot = dumps(engine.engine)
    metrics = engine.engine.metrics.as_dict()
    engine.close()
    return {
        "snapshot": snapshot,
        "metrics": metrics,
        "files": durable_files(wal_dir),
        "report": report,
    }


@pytest.mark.parametrize(
    "loadgen_kwargs",
    [{}, {"protocol": "binary", "batch": 16, "pipeline": 4}],
    ids=["json", "binary-pipelined"],
)
def test_fleet_is_bit_identical_to_standalone_shards(tmp_path, loadgen_kwargs):
    items = trace()
    tenantized = tenantize(items, TENANTS)
    parts = partition_items(tenantized, SHARDS, tenants=TENANTS)
    assert all(parts), "trace must exercise every shard"

    async def fleet_run():
        fleet = Fleet(tmp_path, "fleet")
        front = await fleet.start()
        report = await run_loadgen(
            items, port=front, tenants=TENANTS, **loadgen_kwargs
        )
        (checkpoint,) = await json_call(front, {"op": "checkpoint"})
        assert checkpoint["ok"] and len(checkpoint["shards"]) == SHARDS
        await fleet.stop()
        return fleet, report

    fleet, report = asyncio.run(fleet_run())
    assert report.jobs == N_JOBS
    assert report.errors == 0
    assert sum(report.per_shard.values()) == N_JOBS
    assert report.per_shard == {
        str(i): len(parts[i]) for i in range(SHARDS)
    }
    fleet_state = [
        {
            "snapshot": dumps(fleet.engines[i].engine),
            "metrics": fleet.engines[i].engine.metrics.as_dict(),
            "files": durable_files(fleet.dirs[i]),
        }
        for i in range(SHARDS)
    ]

    total_bins = 0.0
    total_usage = 0.0
    for i in range(SHARDS):
        alone = standalone_run(
            str(tmp_path / f"alone-{i}"), parts[i], loadgen_kwargs
        )
        assert alone["report"].errors == 0
        # bit-identical durable state: same snapshot, same WAL segment
        # and checkpoint file names with the same bytes, same metrics
        assert fleet_state[i]["snapshot"] == alone["snapshot"], i
        assert fleet_state[i]["metrics"] == alone["metrics"], i
        assert fleet_state[i]["files"] == alone["files"], i
        assert fleet_state[i]["files"], i  # the compare is not vacuous
        # and the shard agrees with the batch engine on its subsequence
        batch = run_packing(parts[i], make_algorithm("first-fit"))
        assert alone["report"].drain["bins"] == batch.num_bins
        assert alone["report"].drain["total_usage_time"] == pytest.approx(
            batch.total_usage_time
        )
        total_bins += batch.num_bins
        total_usage += batch.total_usage_time
    # the router's drain aggregation is the sum over shards
    assert report.drain["bins"] == total_bins
    assert report.drain["total_usage_time"] == pytest.approx(total_usage)


def test_single_shard_fleet_matches_direct_service(tmp_path):
    """The 1-shard router is a transparent proxy (degenerate fleet)."""
    items = trace()
    kwargs = {"protocol": "binary", "batch": 16, "pipeline": 2}

    async def routed():
        fleet = Fleet(tmp_path, "routed", shards=1, tenants=0)
        front = await fleet.start()
        report = await run_loadgen(items, port=front, **kwargs)
        (checkpoint,) = await json_call(front, {"op": "checkpoint"})
        assert checkpoint["ok"], checkpoint
        await fleet.stop()
        return dumps(fleet.engines[0].engine), durable_files(fleet.dirs[0]), report

    snapshot, files, report = asyncio.run(routed())
    assert report.errors == 0
    direct = standalone_run(str(tmp_path / "direct"), items, kwargs)
    assert snapshot == direct["snapshot"]
    assert files == direct["files"]
    assert report.actions == direct["report"].actions


# -- handoff ------------------------------------------------------------------
def test_handoff_mid_stream_loses_nothing(tmp_path):
    """Drain -> checkpoint -> restart on the same WAL dir -> repoint.

    Half the jobs land before the handoff, a few acknowledged ids are
    maliciously resent after it (the at-least-once replay a crashed
    client would produce), and the rest land after.  The recovered
    worker's dedup window absorbs the replays, so the final state is
    identical to an uninterrupted run.
    """
    items = tenantize(trace(), TENANTS)
    half = len(items) // 2

    async def run(with_handoff):
        fleet = Fleet(tmp_path, "hand" if with_handoff else "ctrl")

        async def handoff(shard):
            await fleet.router.pause_shard(shard)
            try:
                doc = await fleet.router.shard_control(
                    shard, {"op": "checkpoint"}
                )
                assert doc.get("ok"), doc
                await fleet.router.shard_control(shard, {"op": "shutdown"})
                await fleet.services[shard].wait_closed()
                fleet.engines[shard].close()
                service = fleet.boot_shard(shard)
                port = await service.start("127.0.0.1", 0)
                await fleet.router.redirect_shard(shard, "127.0.0.1", port)
            finally:
                fleet.router.resume_shard(shard)
            return {"port": port}

        front = await fleet.start(handoff_callback=handoff)
        reader, writer = await asyncio.open_connection("127.0.0.1", front)

        async def call(doc):
            writer.write((json.dumps(doc) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        def submit_doc(it):
            return {
                "op": "submit",
                "request_id": f"rid-{it.item_id}",
                "job": {
                    "id": it.item_id, "size": it.size,
                    "arrival": it.arrival, "departure": it.departure,
                },
            }

        first = {}
        for it in items[:half]:
            doc = await call(submit_doc(it))
            assert doc["ok"], doc
            first[it.item_id] = doc
        if with_handoff:
            for shard in range(SHARDS):
                doc = await call({"op": "handoff", "shard": shard})
                assert doc["ok"] and "port" in doc, doc
            # replay a few acknowledged submits: the recovered dedup
            # window must serve the cached outcome, not double-place
            for it in items[:10]:
                doc = await call(submit_doc(it))
                assert doc == first[it.item_id], it.item_id
        for it in items[half:]:
            doc = await call(submit_doc(it))
            assert doc["ok"], doc
        stats = (await call({"op": "stats"}))["stats"]
        assert stats["totals"]["placed"] == len(items)
        drain = await call({"op": "drain"})
        assert drain["ok"], drain
        writer.close()
        await fleet.stop()
        return (
            [json.loads(dumps(e.engine)) for e in fleet.engines],
            {k: v for k, v in drain.items() if k != "ok"},
        )

    snapshots_handoff, drain_handoff = asyncio.run(run(True))
    snapshots_control, drain_control = asyncio.run(run(False))
    assert drain_handoff == drain_control
    # The packing state must be identical; the durable layer's own
    # counters legitimately differ (the handoff run performed an extra
    # recovery, cut a checkpoint, and answered replays from the dedup
    # window), so those — and only those — are excluded.
    from repro.service.recovery import _DURABLE_COUNTERS

    durable_names = {name for name, _ in _DURABLE_COUNTERS}
    for snap in (*snapshots_handoff, *snapshots_control):
        for name in durable_names:
            snap["metrics"].pop(name, None)
    assert snapshots_handoff == snapshots_control


# -- aggregation and hardening ------------------------------------------------
def test_metrics_are_aggregated_under_shard_labels(tmp_path):
    async def go():
        fleet = Fleet(tmp_path, "metrics")
        front = await fleet.start()
        await run_loadgen(
            tenantize(trace(), TENANTS)[:60], port=front, drain=False
        )
        reader, writer = await asyncio.open_connection("127.0.0.1", front)
        writer.write(b'{"op":"metrics"}\n{"op":"stats"}\n{"op":"ping"}\n')
        await writer.drain()
        metrics = json.loads(await reader.readline())
        stats = json.loads(await reader.readline())
        ping = json.loads(await reader.readline())
        writer.close()
        await fleet.stop()
        return metrics, stats, ping

    metrics, stats, ping = asyncio.run(go())
    assert metrics["ok"]
    text = metrics["text"]
    for i in range(SHARDS):
        assert f'shard="{i}"' in text
    # one TYPE header per family even though every shard declares it
    assert text.count("# TYPE repro_service_jobs_submitted_total counter") == 1
    assert "repro_router_requests_total" in text
    router_stats = stats["stats"]["router"]
    assert router_stats["shards"] == SHARDS
    assert router_stats["tenants"] == TENANTS
    assert sum(router_stats["per_shard_requests"]) == 60
    assert stats["stats"]["totals"]["placed"] == 60
    assert len(stats["stats"]["shards"]) == SHARDS
    assert ping == {"ok": True, "pong": True, "shards": SHARDS}


def test_router_error_taxonomy(tmp_path):
    async def go():
        fleet = Fleet(tmp_path, "tax")
        front = await fleet.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", front)

        async def call(raw):
            writer.write(raw)
            await writer.drain()
            return json.loads(await reader.readline())

        out = {}
        out["malformed"] = await call(b"{nope\n")
        out["not_object"] = await call(b"[1,2]\n")
        # unknown op: forwarded to shard 0 so the worker's taxonomy is
        # the single source of truth
        out["unknown"] = await call(b'{"op":"frobnicate"}\n')
        out["bad_submit"] = await call(b'{"op":"submit","job":{"id":"x"}}\n')
        out["handoff_nosup"] = await call(b'{"op":"handoff","shard":0}\n')
        out["handoff_range"] = await call(b'{"op":"handoff","shard":99}\n')
        out["ping"] = await call(b'{"op":"ping"}\n')  # still alive
        writer.close()
        await fleet.stop()
        return out

    out = asyncio.run(go())
    assert out["malformed"]["error_type"] == "malformed_json"
    assert out["not_object"]["error_type"] == "protocol"
    assert out["unknown"]["error_type"] == "protocol"
    assert not out["bad_submit"]["ok"]
    assert out["handoff_nosup"]["error_type"] == "protocol"
    assert out["handoff_range"]["error_type"] == "protocol"
    assert out["ping"]["ok"]


def test_binary_front_hardening(tmp_path):
    async def go():
        fleet = Fleet(tmp_path, "bin")
        front = await fleet.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", front)
        writer.write(wire.hello_line())
        await writer.drain()
        ack = json.loads(await reader.readline())
        assert ack["ok"] and ack["protocol"] == "binary"

        async def frame_call(payload):
            writer.write(wire.frame(payload))
            await writer.drain()
            head = await reader.readexactly(wire.HEADER.size)
            (length,) = wire.HEADER.unpack(head)
            return await reader.readexactly(length)

        # zero-length frame: reported, connection survives
        writer.write(wire.HEADER.pack(0))
        await writer.drain()
        head = await reader.readexactly(wire.HEADER.size)
        (length,) = wire.HEADER.unpack(head)
        zero = wire.decode_response(await reader.readexactly(length))
        # advance broadcasts and aggregates
        advance = wire.decode_response(await frame_call(wire.encode_advance(5.0)))
        # unknown opcode
        unknown = wire.decode_response(await frame_call(b"\xee\x00"))
        # an OP_JSON control op over the binary front
        ping = wire.decode_response(
            await frame_call(wire.encode_json_request({"op": "ping"}))
        )
        writer.close()
        await fleet.stop()
        return zero, advance, unknown, ping

    zero, advance, unknown, ping = asyncio.run(go())
    assert zero["error_type"] == "malformed_frame"
    assert advance["ok"] and advance["clock"] == 5.0 and advance["departed"] == 0
    assert unknown["error_type"] == "protocol"
    assert ping["ok"] and ping["pong"]


def test_oversized_frame_closes_with_frame_too_long(tmp_path):
    async def go():
        fleet = Fleet(tmp_path, "big")
        front = await fleet.start()
        fleet.router.max_line_bytes = 4096
        reader, writer = await asyncio.open_connection("127.0.0.1", front)
        writer.write(wire.hello_line())
        await writer.drain()
        assert json.loads(await reader.readline())["ok"]
        writer.write(wire.HEADER.pack(1 << 20))
        await writer.drain()
        head = await reader.readexactly(wire.HEADER.size)
        (length,) = wire.HEADER.unpack(head)
        doc = wire.decode_response(await reader.readexactly(length))
        tail = await reader.read()  # router closes after the error
        writer.close()
        await fleet.stop()
        return doc, tail

    doc, tail = asyncio.run(go())
    assert doc["error_type"] == "frame_too_long"
    assert tail == b""


@pytest.mark.chaos
def test_router_front_survives_random_garbage(tmp_path):
    """Seeded fuzz at the router's front door: it must answer every
    well-framed probe with a structured error and outlive the rest."""
    rng = random.Random(1337)

    async def go():
        fleet = Fleet(tmp_path, "fuzz")
        front = await fleet.start()
        for round_no in range(30):
            reader, writer = await asyncio.open_connection("127.0.0.1", front)
            mode = round_no % 3
            try:
                if mode == 0:  # garbage JSON lines
                    for _ in range(rng.randint(1, 5)):
                        blob = bytes(
                            rng.randrange(32, 127)
                            for _ in range(rng.randint(1, 80))
                        )
                        writer.write(blob + b"\n")
                        await writer.drain()
                        doc = json.loads(await asyncio.wait_for(
                            reader.readline(), 5.0
                        ))
                        assert "error_type" in doc or doc.get("ok")
                elif mode == 1:  # well-framed random binary payloads
                    writer.write(wire.hello_line())
                    await writer.drain()
                    await asyncio.wait_for(reader.readline(), 5.0)
                    for _ in range(rng.randint(1, 5)):
                        payload = bytes(
                            rng.randrange(256)
                            for _ in range(rng.randint(1, 64))
                        )
                        writer.write(wire.frame(payload))
                        await writer.drain()
                        head = await asyncio.wait_for(
                            reader.readexactly(wire.HEADER.size), 5.0
                        )
                        (length,) = wire.HEADER.unpack(head)
                        await asyncio.wait_for(
                            reader.readexactly(length), 5.0
                        )
                else:  # torn connections mid-frame
                    writer.write(wire.HEADER.pack(rng.randint(1, 512)))
                    await writer.drain()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # the router may close on fatal framing — allowed
            writer.close()
        # after the storm the router still routes real work
        report = await run_loadgen(
            tenantize(trace(), TENANTS)[:40], port=front, tenants=TENANTS
        )
        await fleet.stop()
        return report

    report = asyncio.run(go())
    assert report.errors == 0
    assert report.jobs == 40
