"""The resilience layer in units: breaker, deadlines, outcome classes.

The chaos-network suite proves the whole stack survives a hostile
network; this file pins each mechanism in isolation so a regression
names the broken part.  The circuit breaker runs on a fake clock (no
sleeps), the router's forwarding chokepoint is driven through stubbed
backend links, the deadline surface is exercised over both protocols
against a live in-process service, and the load generator's outcome
classification is tested straight against the report.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.algorithms import make_algorithm
from repro.service import (
    AllocationService,
    MetricsRegistry,
    ShardRouter,
    StreamingEngine,
    run_loadgen,
)
from repro.service import protocol as wire
from repro.service.loadgen import LoadgenReport, _tally
from repro.service.router import (
    BreakerOpenError,
    CircuitBreaker,
    DeadlineExceededError,
)
from repro.workloads import poisson_workload


# -- circuit breaker on a fake clock ------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_breaker(clock, **kw):
    defaults = dict(window=10, min_volume=5, threshold=0.5, cooldown=5.0,
                    probes=1, clock=clock)
    defaults.update(kw)
    return CircuitBreaker(**defaults)


def test_breaker_opens_at_the_failure_threshold():
    clock = FakeClock()
    b = make_breaker(clock)
    for _ in range(3):
        b.record_success()
    b.record_failure()
    b.record_failure()
    # 2/5 failures: at min_volume but under the 0.5 threshold
    assert b.state == CircuitBreaker.CLOSED and b.allow()
    b.record_failure()  # 3/6 = 0.5: trips
    assert b.state == CircuitBreaker.OPEN
    assert not b.allow()
    assert b.state_code == 1
    assert b.transitions[CircuitBreaker.OPEN] == 1


def test_breaker_cooldown_halfopen_probe_and_close():
    clock = FakeClock()
    b = make_breaker(clock, min_volume=2, window=4)
    b.record_failure()
    b.record_failure()
    assert b.state == CircuitBreaker.OPEN
    clock.now += 4.9
    assert not b.allow(), "cooldown has not expired yet"
    clock.now += 0.2
    assert b.allow(), "first allow past cooldown is the half-open probe"
    assert b.state == CircuitBreaker.HALF_OPEN
    assert not b.allow(), "the probe budget is one request"
    b.record_success()
    assert b.state == CircuitBreaker.CLOSED
    assert b.allow()
    # the window was cleared: one new failure must not instantly re-trip
    b.record_failure()
    assert b.state == CircuitBreaker.CLOSED


def test_breaker_failed_probe_reopens_for_another_cooldown():
    clock = FakeClock()
    b = make_breaker(clock, min_volume=2, window=4)
    b.record_failure()
    b.record_failure()
    clock.now += 5.1
    assert b.allow()
    b.record_failure()  # the probe died too
    assert b.state == CircuitBreaker.OPEN
    assert not b.allow(), "a fresh cooldown started at the probe failure"
    clock.now += 5.1
    assert b.allow()
    b.record_success()
    assert b.state == CircuitBreaker.CLOSED
    assert b.transitions == {
        CircuitBreaker.CLOSED: 1,
        CircuitBreaker.OPEN: 2,
        CircuitBreaker.HALF_OPEN: 2,
    }


def test_breaker_parameter_validation():
    for kw in (
        {"window": 0},
        {"min_volume": 0},
        {"threshold": 0.0},
        {"threshold": 1.5},
        {"probes": 0},
    ):
        with pytest.raises(ValueError):
            make_breaker(FakeClock(), **kw)


# -- the router chokepoint with stubbed links ---------------------------------
def stats_payload() -> bytes:
    return wire.encode_json_request({"op": "stats"})


def test_router_budget_timeout_becomes_deadline_exceeded():
    async def go():
        router = ShardRouter([("127.0.0.1", 1)], request_timeout=5.0)

        async def never(payload):
            await asyncio.Event().wait()

        router.links[0].request = never
        with pytest.raises(DeadlineExceededError):
            await router._call_shard(0, stats_payload(), budget_ms=30.0)
        assert router.deadline_exceeded[0] == 1
        assert router.breakers[0].state == CircuitBreaker.CLOSED
        text = router._own_exposition()
        assert 'repro_router_deadline_exceeded_total{shard="0"} 1' in text
        doc = router._error_doc(0, DeadlineExceededError("no reply"))
        assert doc["error_type"] == "deadline_exceeded"
        assert doc["error"].startswith("shard 0: ")

    asyncio.run(go())


def test_router_failfast_breaker_rejects_and_exposes_state():
    async def go():
        router = ShardRouter(
            [("127.0.0.1", 1)],
            request_timeout=1.0,
            breaker_window=10,
            breaker_min_volume=3,
            breaker_threshold=0.5,
            breaker_cooldown=60.0,
        )
        calls = 0

        async def refuse(payload):
            nonlocal calls
            calls += 1
            raise ConnectionError("injected backend failure")

        router.links[0].request = refuse
        for _ in range(3):
            with pytest.raises(ConnectionError):
                await router._call_shard(0, stats_payload())
        assert router.breakers[0].state == CircuitBreaker.OPEN
        with pytest.raises(BreakerOpenError):
            await router._call_shard(0, stats_payload())
        assert calls == 3, "an open breaker must not touch the backend"
        assert router.breaker_rejected[0] == 1
        doc = router._error_doc(0, BreakerOpenError("circuit breaker open"))
        assert doc["error_type"] == "shard_unavailable"
        assert doc["breaker"] == "open"
        text = router._own_exposition()
        assert 'repro_router_breaker_state{shard="0"} 1' in text
        assert 'repro_router_breaker_rejected_total{shard="0"} 1' in text
        assert (
            'repro_router_breaker_transitions_total{shard="0",state="open"} 1'
            in text
        )

    asyncio.run(go())


def test_router_queue_mode_parks_until_the_breaker_heals():
    async def go():
        router = ShardRouter(
            [("127.0.0.1", 1)],
            request_timeout=5.0,
            degraded="queue",
            breaker_window=10,
            breaker_min_volume=2,
            breaker_cooldown=0.05,
        )

        async def refuse(payload):
            raise ConnectionError("injected backend failure")

        router.links[0].request = refuse
        for _ in range(2):
            with pytest.raises(ConnectionError):
                await router._call_shard(0, stats_payload())
        assert router.breakers[0].state == CircuitBreaker.OPEN

        async def ok(payload):
            return b"healed"

        router.links[0].request = ok
        # the queued request waits out the cooldown, becomes the
        # half-open probe, and drains through the healed link
        out = await router._call_shard(0, stats_payload())
        assert out == b"healed"
        assert router.breakers[0].state == CircuitBreaker.CLOSED
        assert router.breaker_rejected[0] == 0

    asyncio.run(go())


def test_router_rejects_unknown_degraded_policy():
    with pytest.raises(ValueError, match="degraded policy"):
        ShardRouter([("127.0.0.1", 1)], degraded="shrug")


# -- the deadline surface, both protocols -------------------------------------
def fresh_service():
    engine = StreamingEngine.scalar(
        make_algorithm("first-fit"), metrics=MetricsRegistry()
    )
    return engine, AllocationService(engine, quiet=True)


async def json_roundtrip(port, docs):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    out = []
    for doc in docs:
        writer.write((json.dumps(doc) + "\n").encode())
        await writer.drain()
        out.append(json.loads(await reader.readline()))
    writer.close()
    return out


def test_json_deadline_field_is_enforced():
    async def go():
        engine, service = fresh_service()
        port = await service.start("127.0.0.1", 0)
        try:
            spent, alive, bogus, metrics = await json_roundtrip(port, [
                {"op": "advance", "now": 1.0, "deadline_ms": 0},
                {"op": "advance", "now": 1.0, "deadline_ms": 60000.0},
                {"op": "advance", "now": 2.0, "deadline_ms": "soonish"},
                {"op": "metrics"},
            ])
        finally:
            service._shutdown.set()
            await service.wait_closed()
        assert not spent["ok"]
        assert spent["error_type"] == "deadline_exceeded"
        assert alive["ok"], alive
        assert not bogus["ok"] and bogus["error_type"] == "protocol"
        assert "repro_service_deadline_exceeded_total 1" in metrics["text"]

    asyncio.run(go())


def test_binary_deadline_wrapper_is_enforced():
    async def go():
        engine, service = fresh_service()
        port = await service.start("127.0.0.1", 0)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(wire.hello_line())
            await writer.drain()
            ack = json.loads(await reader.readline())
            assert ack["ok"] and ack["version"] == wire.PROTOCOL_VERSION

            async def call(payload: bytes) -> dict:
                writer.write(wire.frame(payload))
                await writer.drain()
                head = await reader.readexactly(wire.HEADER.size)
                (length,) = wire.HEADER.unpack(head)
                return wire.decode_response(await reader.readexactly(length))

            advance = wire.encode_advance(1.0)
            spent = await call(wire.wrap_deadline(advance, 0.0))
            assert not spent["ok"]
            assert spent["error_type"] == "deadline_exceeded"
            alive = await call(wire.wrap_deadline(advance, 60000.0))
            assert alive["ok"], alive
            nested = await call(
                wire.wrap_deadline(wire.wrap_deadline(advance, 5.0), 5.0)
            )
            assert not nested["ok"]
            assert nested["error_type"] == "malformed_frame"
        finally:
            writer.close()
            service._shutdown.set()
            await service.wait_closed()

    asyncio.run(go())


def test_wrap_unwrap_deadline_roundtrip():
    inner = wire.encode_advance(3.5)
    wrapped = wire.wrap_deadline(inner, 123.25)
    payload, budget = wire.unwrap_deadline(wrapped)
    assert bytes(payload) == inner
    assert budget == 123.25
    # a bare payload passes through untouched
    payload, budget = wire.unwrap_deadline(inner)
    assert bytes(payload) == inner and budget is None
    with pytest.raises(wire.FrameError):
        wire.unwrap_deadline(wrapped[: wire._DEADLINE.size - 2])


# -- loadgen outcome classification -------------------------------------------
def test_tally_files_outcomes_under_their_classes():
    report = LoadgenReport()
    _tally(report, {"ok": True, "placement": {"action": "placed"}}, 1.0)
    _tally(report, {"ok": True, "clock": 4.0}, 2.0)
    _tally(
        report,
        {"ok": False, "error_type": "deadline_exceeded", "error": "late"},
        9.0,
    )
    _tally(
        report,
        {
            "ok": False,
            "error_type": "shard_unavailable",
            "breaker": "open",
            "error": "open",
        },
        3.0,
    )
    _tally(report, {"ok": False, "error_type": "rejected", "error": "no"}, 5.0)
    assert report.actions == {"placed": 1}
    assert report.errors == 3
    assert report.deadline_exceeded == 1
    assert report.breaker_rejected == 1
    assert sorted(report.class_latencies) == [
        "breaker_rejected", "deadline_exceeded", "error", "ok",
    ]
    assert report.class_latencies["ok"] == [1.0, 2.0]
    assert report.class_percentile("deadline_exceeded", 99) == 9.0


def test_report_renders_and_serialises_failure_classes():
    report = LoadgenReport(jobs=10, wall_seconds=1.0)
    report.timeouts = 2
    report.breaker_rejected = 1
    report.deadline_exceeded = 3
    report.errors = 4
    report.note_outcome("ok", 1.5)
    report.note_outcome("deadline_exceeded", 40.0)
    text = report.render()
    assert "failure classes: timeouts=2 breaker_rejected=1 deadline_exceeded=3" in text
    assert "p99 ms by outcome:" in text
    doc = report.to_json()
    assert doc["timeouts"] == 2
    assert doc["breaker_rejected"] == 1
    assert doc["deadline_exceeded"] == 3
    by_outcome = doc["latency_ms_by_outcome"]
    assert by_outcome["ok"] == {"count": 1, "p50": 1.5, "p99": 1.5}
    assert by_outcome["deadline_exceeded"]["count"] == 1


def test_loadgen_deadline_interop_and_validation(tmp_path):
    """A generous budget rides along without changing any outcome."""
    items = poisson_workload(40, seed=3, mu_target=8.0, arrival_rate=6.0)

    async def go():
        engine, service = fresh_service()
        port = await service.start("127.0.0.1", 0)
        try:
            report = await run_loadgen(
                items, port=port, protocol="binary", batch=8, pipeline=2,
                deadline_ms=60000.0,
            )
        finally:
            service._shutdown.set()
            await service.wait_closed()
        return report

    report = asyncio.run(go())
    assert report.errors == 0
    assert report.jobs == 40
    assert report.deadline_exceeded == 0
    with pytest.raises(ValueError, match="deadline_ms"):
        asyncio.run(run_loadgen(items, port=1, deadline_ms=-1.0))
