"""The durable defragmenter: bounded migration through the live service.

Engine-level: ``StreamingEngine.defrag`` runs one bounded evacuation
pass, the migration counters (``migrations`` / ``defrag_runs`` /
``bins_evacuated``) track it exactly, a pass whose plan is empty is a
complete no-op, and the counters ride through the Prometheus exposition
and the checkpoint codec.  Durability: ``DurableEngine.defrag`` logs an
append-before-move intent record — *only* when the pass is effective —
and recovery replays it through the real engine path, reproducing the
uninterrupted run's packing and counters exactly.  Service-level: the
``defrag`` request op (validation + reply shape), the background
defragmenter loop, and the router's fleet-wide broadcast/aggregation.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.algorithms import make_algorithm
from repro.core.items import Item
from repro.service import (
    AllocationService,
    DurableEngine,
    MetricsRegistry,
    ShardRouter,
    StreamingEngine,
    WriteAheadLog,
    loads,
    recover,
)
from repro.service.snapshot import dumps
from repro.service.wal import replay_wal


def _job(item_id, size, arrival, departure):
    return Item(item_id=item_id, size=size, arrival=arrival, departure=departure)


#: three submits and a clock move that leave a deterministic hole:
#: bin 0 at 0.55 (item 1), bin 1 at 0.30 (item 3) — one migration
#: (item 3 -> bin 0) evacuates bin 1 entirely
FRAG_OPS = [
    ("submit", _job(1, 0.55, 0.0, 10.0)),
    ("submit", _job(2, 0.40, 0.0, 1.0)),   # wedges bin 0 to 0.95 ...
    ("submit", _job(3, 0.30, 0.5, 10.0)),  # ... so this opens bin 1
    ("advance", 2.0),                      # item 2 departs; the hole appears
]


def fragmented_engine(metrics=None):
    engine = StreamingEngine.scalar(make_algorithm("first-fit"), metrics=metrics)
    for kind, arg in FRAG_OPS:
        engine.submit(arg) if kind == "submit" else engine.advance(arg)
    return engine


class TestEngineDefrag:
    def test_effective_pass_moves_and_counts(self):
        engine = fragmented_engine()
        assert engine.defrag(2) == 1
        assert engine.state.item_bin[3] == 0
        assert engine.state.num_open == 1
        assert (engine.migrations, engine.defrag_runs, engine.bins_evacuated) \
            == (1, 1, 1)
        stats = engine.stats()
        assert stats["migrations"] == 1
        assert stats["defrag_runs"] == 1
        assert stats["bins_evacuated"] == 1

    def test_noop_pass_is_free(self):
        engine = fragmented_engine()
        assert engine.defrag(0) == 0          # zero budget: planner disabled
        engine.defrag(2)
        assert engine.defrag(4) == 0          # single open bin: nothing to do
        assert engine.defrag_runs == 1        # only the effective pass counted

    def test_plan_defrag_previews_without_mutating(self):
        engine = fragmented_engine()
        plan = engine.plan_defrag(2)
        assert [(it.item_id, t.index) for it, t in plan] == [(3, 0)]
        assert engine.state.item_bin[3] == 1  # preview only
        assert engine.migrations == 0

    def test_counters_reach_the_exposition(self):
        engine = fragmented_engine(metrics=MetricsRegistry())
        engine.defrag(2)
        text = engine.metrics.expose_text()
        assert "repro_service_migrations_total 1" in text
        assert "repro_service_defrag_runs_total 1" in text
        assert "repro_service_bins_evacuated_total 1" in text

    def test_counters_survive_checkpoint_roundtrip(self):
        engine = fragmented_engine(metrics=MetricsRegistry())
        engine.defrag(2)
        restored = loads(
            dumps(engine), make_algorithm("first-fit"), metrics=MetricsRegistry()
        )
        assert (restored.migrations, restored.defrag_runs,
                restored.bins_evacuated) == (1, 1, 1)
        assert restored.metrics.expose_text() == engine.metrics.expose_text()
        assert restored.stats() == engine.stats()
        a, b = restored.finish(), engine.finish()
        assert a.item_bin == b.item_bin
        assert a.total_usage_time == b.total_usage_time


class TestDurableDefrag:
    def _feed(self, durable):
        for i, (kind, arg) in enumerate(FRAG_OPS):
            if kind == "submit":
                durable.submit(arg, request_id=f"op-{i}")
            else:
                durable.advance(arg)

    def test_recovery_replays_the_move(self, tmp_path):
        directory = str(tmp_path / "wal")
        wal = WriteAheadLog(directory, fsync="never")
        durable = DurableEngine(
            StreamingEngine.scalar(make_algorithm("first-fit")),
            wal,
            checkpoint_every=1000,
        )
        self._feed(durable)
        assert durable.defrag(2) == 1
        seq_after = wal.last_seq
        assert durable.defrag(4) == 0      # no-op: no record, no counter
        assert wal.last_seq == seq_after
        wal.close()

        records, _ = replay_wal(directory)
        defrags = [r.payload for r in records if r.payload.get("op") == "defrag"]
        assert defrags == [{"op": "defrag", "budget": 2}]

        recovered, _ = recover(
            directory,
            engine_builder=lambda: StreamingEngine.scalar(
                make_algorithm("first-fit")
            ),
            fsync="never",
        )
        # replay re-plans at the logged position and re-applies the move
        assert recovered.engine.state.item_bin[3] == 0
        assert (recovered.engine.migrations, recovered.engine.defrag_runs,
                recovered.engine.bins_evacuated) == (1, 1, 1)

        baseline = fragmented_engine()
        baseline.defrag(2)
        a, b = recovered.finish(), baseline.finish()
        assert a.item_bin == b.item_bin
        assert a.total_usage_time == b.total_usage_time
        assert a.num_bins == b.num_bins
        recovered.close()


class TestServiceOp:
    def test_defrag_op_moves_and_reports(self):
        service = AllocationService(fragmented_engine(), quiet=True)
        reply = service._dispatch({"op": "defrag", "budget": 2})
        assert reply == {"ok": True, "moved": 1, "migrations": 1}
        again = service._dispatch({"op": "defrag", "budget": 2})
        assert again == {"ok": True, "moved": 0, "migrations": 1}

    def test_defrag_op_defaults_to_configured_budget(self):
        service = AllocationService(
            fragmented_engine(), quiet=True, defrag_budget=2
        )
        reply = service._dispatch({"op": "defrag"})
        assert reply["moved"] == 1

    def test_defrag_op_validates_budget(self):
        service = AllocationService(fragmented_engine(), quiet=True)
        bad = service._dispatch_safely({"op": "defrag", "budget": -1})
        assert bad["ok"] is False and "budget" in bad["error"]
        worse = service._dispatch_safely({"op": "defrag", "budget": "lots"})
        assert worse["ok"] is False and "integer" in worse["error"]
        # the engine never moved anything
        assert service.engine.migrations == 0

    def test_background_loop_defragments(self):
        async def go():
            engine = fragmented_engine()
            service = AllocationService(
                engine, quiet=True, defrag_budget=2, defrag_interval=0.01
            )
            await service.start("127.0.0.1", 0)
            try:
                for _ in range(200):
                    if engine.migrations:
                        break
                    await asyncio.sleep(0.01)
            finally:
                service._shutdown.set()
                await service.wait_closed()
            return engine.migrations, engine.defrag_runs

        migrations, runs = asyncio.run(go())
        assert migrations == 1
        assert runs == 1  # later passes were no-ops and counted nothing


class TestRouterBroadcast:
    def test_defrag_broadcasts_and_aggregates(self):
        async def go():
            engines = [fragmented_engine(), fragmented_engine()]
            services = [AllocationService(e, quiet=True) for e in engines]
            ports = [await s.start("127.0.0.1", 0) for s in services]
            router = ShardRouter(
                [("127.0.0.1", p) for p in ports],
                tenants=4,
                reconnect_wait=10.0,
            )
            await router.connect()
            front = await router.start("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection("127.0.0.1", front)

            async def call(doc):
                writer.write((json.dumps(doc) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            reply = await call({"op": "defrag", "budget": 2})
            stats = await call({"op": "stats"})
            writer.close()
            router.shutdown()
            await router.wait_closed()
            for service in services:
                service._shutdown.set()
                await service.wait_closed()
            return reply, stats

        reply, stats = asyncio.run(go())
        assert reply["ok"] is True
        assert reply["moved"] == 2
        assert reply["migrations"] == 2
        assert reply["shards"] == [1, 1]
        totals = stats["stats"]["totals"]
        assert totals["migrations"] == 2
        assert totals["defrag_runs"] == 2
