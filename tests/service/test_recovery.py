"""Crash recovery: killed-anywhere ≡ never-killed, bit for bit.

The property test at the heart of the durability claim: run a seeded
trace through a :class:`DurableEngine` with a fault plan that kills the
process at *every possible event index* — before the WAL append, after
the append but before the apply, and after the apply — then
:func:`recover` from the directory and resume the trace from the killed
index.  Retried submits carry the same ``request_id`` as the original,
so the idempotency window absorbs the may-or-may-not-have-applied
ambiguity, and the final packing (``item_bin``, float-exact
``total_usage_time``) must equal the run that never crashed.  Variants
cover torn tail records, the vector engine, and cuts landing while the
adaptive first-fit index is active.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.core.state as state_mod
from repro.algorithms import make_algorithm
from repro.multidim import make_vector_algorithm, vector_workload
from repro.service import (
    DedupWindow,
    DurableEngine,
    FaultInjector,
    FaultPlan,
    KillPoint,
    MetricsRegistry,
    StreamingEngine,
    WriteAheadLog,
    recover,
)
from repro.service.recovery import CHECKPOINT_PREFIX, CHECKPOINT_SUFFIX
from repro.service.snapshot import SNAPSHOT_VERSION
from repro.workloads import poisson_workload

CHECKPOINT_EVERY = 7  # small, so most kill runs cross several checkpoints


def scalar_ops(n=36, seed=17, arrival_rate=4.0):
    items = poisson_workload(n, seed=seed, mu_target=8.0, arrival_rate=arrival_rate)
    ordered = sorted(items, key=lambda it: it.arrival)
    ops = []
    for i, it in enumerate(ordered):
        ops.append(("submit", it))
        if i % 10 == 9:  # sprinkle explicit clock moves into the log
            ops.append(("advance", it.arrival))
    return items.capacity, ops


def vector_ops(n=30, seed=19):
    items = vector_workload(n, seed=seed, dimensions=2, arrival_rate=10.0)
    ordered = sorted(items, key=lambda it: it.arrival)
    return items.capacity, [("submit", it) for it in ordered]


def apply_op(engine, i, op, durable):
    kind, arg = op
    if kind == "submit":
        if durable:
            engine.submit(arg, request_id=f"op-{i}")
        else:
            engine.submit(arg)
    else:
        engine.advance(arg)


def baseline_result(make_engine, ops):
    engine = make_engine()
    for i, op in enumerate(ops):
        apply_op(engine, i, op, durable=False)
    return engine.finish()


def run_with_kill(directory, make_engine, ops, point, hit, torn=False):
    """One crash-recovery round trip; returns (result, report)."""
    plan = FaultPlan(seed=1, kill={point: hit}, torn_tail=torn)
    injector = FaultInjector(plan)
    wal = WriteAheadLog(directory, fsync="never")
    durable = DurableEngine(
        make_engine(), wal, checkpoint_every=CHECKPOINT_EVERY, injector=injector
    )
    killed_at = None
    try:
        for i, op in enumerate(ops):
            apply_op(durable, i, op, durable=True)
        durable.finish()
    except KillPoint:
        killed_at = i
    finally:
        wal.close()
    assert killed_at is not None, f"kill {point}@{hit} never fired"

    recovered, report = recover(
        directory,
        engine_builder=make_engine,
        fsync="never",
        checkpoint_every=CHECKPOINT_EVERY,
    )
    # the restarted client retries from the killed event with the same
    # request ids — the dedup window absorbs the maybe-applied one
    for i in range(killed_at, len(ops)):
        apply_op(recovered, i, ops[i], durable=True)
    result = recovered.finish()
    recovered.close()
    return result, report


# every hit index, for the kill windows on either side of the apply:
# before the WAL append (nothing durable) and after the apply (both the
# log and the in-memory state saw the op)
@pytest.mark.parametrize("point", ["wal.write", "applied"])
def test_scalar_kill_at_every_event_index(tmp_path, point):
    capacity, ops = scalar_ops()
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    expected = baseline_result(make_engine, ops)
    for hit in range(1, len(ops) + 1):
        result, _ = run_with_kill(
            str(tmp_path / f"{point}-{hit}"), make_engine, ops, point, hit
        )
        assert result.item_bin == expected.item_bin, f"{point}@{hit}"
        assert result.total_usage_time == expected.total_usage_time, f"{point}@{hit}"
        assert result.num_bins == expected.num_bins, f"{point}@{hit}"


def test_scalar_kill_between_append_and_apply(tmp_path):
    """The narrowest window: logged but never applied.  Replay applies it."""
    capacity, ops = scalar_ops()
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    expected = baseline_result(make_engine, ops)
    for hit in range(1, len(ops) + 1, 3):
        result, report = run_with_kill(
            str(tmp_path / f"gap-{hit}"), make_engine, ops, "wal.appended", hit
        )
        assert result.item_bin == expected.item_bin, f"wal.appended@{hit}"
        assert result.total_usage_time == expected.total_usage_time


def test_scalar_kill_with_torn_tail(tmp_path):
    """The kill tears the in-flight record; recovery truncates and resumes."""
    capacity, ops = scalar_ops()
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    expected = baseline_result(make_engine, ops)
    saw_torn = 0
    for hit in range(1, len(ops) + 1, 2):
        result, report = run_with_kill(
            str(tmp_path / f"torn-{hit}"), make_engine, ops, "wal.write", hit,
            torn=True,
        )
        saw_torn += report.torn_bytes > 0
        assert result.item_bin == expected.item_bin, f"torn@{hit}"
        assert result.total_usage_time == expected.total_usage_time, f"torn@{hit}"
    assert saw_torn > 0, "at least one run must recover an actual torn tail"


def test_vector_kill_at_every_event_index(tmp_path):
    capacity, ops = vector_ops()
    make_engine = lambda: StreamingEngine.vector(
        make_vector_algorithm("vector-first-fit"), capacity=capacity
    )
    expected = baseline_result(make_engine, ops)
    for hit in range(1, len(ops) + 1):
        result, _ = run_with_kill(
            str(tmp_path / f"v-{hit}"), make_engine, ops, "applied", hit
        )
        assert result.item_bin == expected.item_bin, f"vector applied@{hit}"
        assert result.total_usage_time == expected.total_usage_time


def test_scalar_kill_with_index_active(tmp_path, monkeypatch):
    """Cuts landing in the adaptive-tree regime recover identically."""
    monkeypatch.setattr(state_mod, "INDEX_THRESHOLD", 1)
    capacity, ops = scalar_ops(n=25, seed=3, arrival_rate=30.0)
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    expected = baseline_result(make_engine, ops)
    for hit in range(1, len(ops) + 1, 2):
        result, _ = run_with_kill(
            str(tmp_path / f"tree-{hit}"), make_engine, ops, "applied", hit
        )
        assert result.item_bin == expected.item_bin, f"tree applied@{hit}"
        assert result.total_usage_time == expected.total_usage_time


def test_mid_step_kill_inside_the_driver(tmp_path):
    """Kills landing *inside* the engine's event step still recover."""
    capacity, ops = scalar_ops(n=20, seed=5)
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    expected = baseline_result(make_engine, ops)
    for point in ("arrive.pre", "arrive.post"):
        for hit in (1, 5, 11):
            result, _ = run_with_kill(
                str(tmp_path / f"{point}-{hit}"), make_engine, ops, point, hit
            )
            assert result.item_bin == expected.item_bin, f"{point}@{hit}"
            assert result.total_usage_time == expected.total_usage_time


def test_recovery_metrics_and_report(tmp_path):
    capacity, ops = scalar_ops(n=15, seed=9)
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity, metrics=MetricsRegistry()
    )
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    durable = DurableEngine(make_engine(), wal, checkpoint_every=1000)
    for i, op in enumerate(ops):
        apply_op(durable, i, op, durable=True)
    wal.close()  # no checkpoint, no clean shutdown: a full-tail replay

    recovered, report = recover(
        str(tmp_path), engine_builder=make_engine, fsync="never"
    )
    assert report.checkpoint_path is None
    assert report.replayed == len(ops)
    assert report.replay_errors == 0
    assert report.dedup_entries == sum(1 for k, _ in ops if k == "submit")
    reg = recovered.metrics
    assert reg.get("repro_service_recoveries_total").value == 1
    assert reg.get("repro_service_wal_replayed_total").value == len(ops)
    text = report.render()
    assert "cold replay" in text
    assert f"replayed {len(ops)} WAL records" in text
    recovered.close()


def test_duplicate_submit_is_answered_from_the_window(tmp_path):
    capacity, ops = scalar_ops(n=10, seed=21)
    engine = StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity, metrics=MetricsRegistry()
    )
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    durable = DurableEngine(engine, wal)
    item = ops[0][1]
    first = durable.submit(item, request_id="rid-1")
    again = durable.submit(item, request_id="rid-1")
    assert again.to_dict() == first.to_dict()
    assert wal.records_written == 1, "the duplicate must not touch the log"
    assert (
        engine.metrics.get("repro_service_duplicate_requests_total").value == 1
    )
    durable.close()


def test_newer_schema_checkpoint_is_refused(tmp_path):
    doc = {"version": SNAPSHOT_VERSION + 1, "wal_seq": 5, "engine": {}}
    path = tmp_path / f"{CHECKPOINT_PREFIX}{5:010d}{CHECKPOINT_SUFFIX}"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="newer than this code"):
        recover(
            str(tmp_path),
            engine_builder=lambda: StreamingEngine.scalar(
                make_algorithm("first-fit")
            ),
        )


def test_unreadable_checkpoint_is_skipped_for_an_older_one(tmp_path):
    capacity, ops = scalar_ops(n=12, seed=33)
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    durable = DurableEngine(make_engine(), wal, checkpoint_every=1000)
    for i, op in enumerate(ops):
        apply_op(durable, i, op, durable=True)
    good = durable.checkpoint_now()
    wal.close()
    # a newer checkpoint truncated by a crash predating atomic writes
    bad = tmp_path / f"{CHECKPOINT_PREFIX}{9999:010d}{CHECKPOINT_SUFFIX}"
    bad.write_text('{"version": 1, "wal_')

    recovered, report = recover(str(tmp_path), engine_builder=make_engine)
    assert report.checkpoint_path == good
    assert report.skipped_checkpoints == [str(bad)]
    assert recovered.engine.state.num_bins_used > 0
    recovered.close()


def test_corrupt_newest_checkpoint_falls_back_and_replays_the_gap(tmp_path):
    """A parseable-but-broken newest checkpoint must not sink recovery.

    Checkpoint A covers the first half of the trace, checkpoint B the
    whole of it.  B then gets its engine section mangled (valid JSON, so
    it survives ``read_checkpoint`` and only dies inside the restore).
    Recovery must fall back to A, count B in ``fallback_checkpoints``,
    and replay the WAL records between A and the end of the log so the
    final packing still matches the run that never crashed.
    """
    capacity, ops = scalar_ops(n=12, seed=33)
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    durable = DurableEngine(make_engine(), wal, checkpoint_every=1000)
    half = len(ops) // 2
    for i, op in enumerate(ops[:half]):
        apply_op(durable, i, op, durable=True)
    good = durable.checkpoint_now()
    for i, op in enumerate(ops[half:], start=half):
        apply_op(durable, i, op, durable=True)
    bad = durable.checkpoint_now()
    assert bad != good
    wal.close()

    doc = json.loads(open(bad).read())
    doc["engine"] = {"kind": "scalar"}  # structurally gutted, still JSON
    with open(bad, "w") as fh:
        fh.write(json.dumps(doc))

    recovered, report = recover(str(tmp_path), engine_builder=make_engine)
    assert report.checkpoint_path == good
    assert report.fallback_checkpoints == [str(bad)]
    assert report.skipped_checkpoints == []
    assert report.replayed == len(
        [op for op in ops[half:]]
    ), "every op after checkpoint A must come back from the log"
    result = recovered.finish()
    recovered.close()
    baseline = baseline_result(make_engine, ops)
    assert result.item_bin == baseline.item_bin
    assert result.total_usage_time == baseline.total_usage_time


def test_fallback_refuses_when_the_log_cannot_cover_the_gap(tmp_path):
    """Falling back past a pruned log must fail loudly, not lose ops."""
    from repro.service.wal import SEGMENT_PREFIX, SEGMENT_SUFFIX, WalCorruptionError

    capacity, ops = scalar_ops(n=12, seed=33)
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    durable = DurableEngine(make_engine(), wal, checkpoint_every=1000)
    half = len(ops) // 2
    for i, op in enumerate(ops[:half]):
        apply_op(durable, i, op, durable=True)
    a_seq = wal.last_seq
    durable.checkpoint_now()
    for i, op in enumerate(ops[half:], start=half):
        apply_op(durable, i, op, durable=True)
    bad = durable.checkpoint_now()
    wal.close()

    doc = json.loads(open(bad).read())
    doc["engine"] = {"kind": "scalar"}
    with open(bad, "w") as fh:
        fh.write(json.dumps(doc))
    # simulate the prune that would normally follow checkpoint B: drop
    # the records checkpoint A depends on, leaving a seq gap after it
    for name in os.listdir(tmp_path):
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX):
            seg = tmp_path / name
            kept = [
                line
                for line in seg.read_bytes().splitlines(keepends=True)
                if int(line.split(b" ", 1)[0]) > a_seq + 1
            ]
            seg.write_bytes(b"".join(kept))

    with pytest.raises(WalCorruptionError, match="acknowledged operations missing"):
        recover(str(tmp_path), engine_builder=make_engine)


def test_checkpoint_retention_keeps_three(tmp_path):
    capacity, ops = scalar_ops(n=20, seed=41)
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    durable = DurableEngine(
        StreamingEngine.scalar(make_algorithm("first-fit"), capacity=capacity),
        wal,
        checkpoint_every=2,
    )
    for i, op in enumerate(ops):
        apply_op(durable, i, op, durable=True)
    durable.close()
    checkpoints = [
        n for n in os.listdir(str(tmp_path)) if n.startswith(CHECKPOINT_PREFIX)
    ]
    assert 1 <= len(checkpoints) <= 3


def test_cold_start_without_builder_is_an_error(tmp_path):
    with pytest.raises(ValueError, match="engine_builder"):
        recover(str(tmp_path))


def test_dedup_window_is_bounded():
    window = DedupWindow(limit=3)
    for i in range(5):
        window.put(f"r{i}", {"n": i})
    assert len(window) == 3
    assert "r0" not in window and "r1" not in window
    assert window.get("r4") == {"n": 4}
    with pytest.raises(ValueError):
        DedupWindow(limit=0)
