"""The fleet supervisor: real worker processes behind the router.

Two layers are exercised here.  The tier-1 smoke drives the actual
``repro fleet`` CLI as a subprocess — workers spawn, the router binds,
a tenant-keyed loadgen runs through it, and a clean ``shutdown``
broadcast takes the whole fleet down with rc 0.  The chaos test runs
the :class:`FleetSupervisor` in-process and murders one worker
mid-stream with a fault plan; the supervisor must respawn it on the
same WAL directory and the client must observe zero errors (the link
window resend + the recovered dedup window = exactly-once).
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time

import pytest

from repro.service import (
    FleetSupervisor,
    RetryPolicy,
    partition_items,
    read_manifest,
    run_loadgen,
    tenantize,
)
from repro.workloads import poisson_workload

TENANTS = 8
SHARDS = 2


def trace(n=160, seed=7):
    items = poisson_workload(n, seed=seed, mu_target=8.0, arrival_rate=6.0)
    return sorted(items, key=lambda it: it.arrival)


def _env_with_src():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    paths = [p for p in (src, env.get("PYTHONPATH")) if p]
    env["PYTHONPATH"] = os.pathsep.join(paths)
    return env


def wait_for_port(port_file, proc=None, deadline=30.0):
    """Poll ``port_file`` until a port appears (or ``proc`` dies)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            with open(port_file) as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        if proc is not None and proc.poll() is not None:
            raise RuntimeError(f"fleet exited early with rc {proc.returncode}")
        time.sleep(0.02)
    raise RuntimeError(f"no port in {port_file} after {deadline:.0f}s")


def test_fleet_cli_smoke(tmp_path):
    """``repro fleet``: spawn 2 workers, loadgen through the router,
    clean shutdown — and each shard directory carries its MANIFEST."""
    wal_root = str(tmp_path / "fleet")
    port_file = str(tmp_path / "PORT")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet",
            "--shards", str(SHARDS),
            "--wal-dir", wal_root,
            "--port", "0",
            "--port-file", port_file,
            "--tenants", str(TENANTS),
            "--fsync", "never",
            "--quiet",
        ],
        env=_env_with_src(),
    )
    try:
        port = wait_for_port(port_file, proc)
        report = asyncio.run(
            run_loadgen(
                trace(),
                port=port,
                tenants=TENANTS,
                protocol="binary",
                batch=16,
                pipeline=2,
                retry=RetryPolicy(retries=2),
                shutdown=True,
            )
        )
    finally:
        if proc.poll() is None:
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()
    assert proc.returncode == 0
    assert report.errors == 0
    assert report.jobs == len(trace())
    assert report.actions.get("placed", 0) + report.actions.get(
        "rejected", 0
    ) == report.jobs
    assert set(report.per_shard) == {str(i) for i in range(SHARDS)}
    assert sum(report.per_shard.values()) == report.jobs
    assert report.drain.get("bins", 0) > 0
    # every worker stamped its shard identity onto its WAL directory
    for i in range(SHARDS):
        manifest = read_manifest(os.path.join(wal_root, f"shard-{i:02d}"))
        assert manifest is not None
        assert manifest["shard_id"] == i
        assert manifest["num_shards"] == SHARDS


@pytest.mark.chaos
def test_fleet_restarts_killed_worker_without_client_errors(tmp_path):
    """A worker murdered mid-stream (fault-plan kill at a WAL-applied
    hit) is respawned on its WAL dir; the client sees zero errors."""
    items = tenantize(trace(240, seed=23), TENANTS)
    parts = partition_items(items, SHARDS, tenants=TENANTS)
    assert len(parts[1]) >= 9, "trace must land enough jobs on shard 1"
    plan_path = str(tmp_path / "plan.json")
    with open(plan_path, "w") as f:
        json.dump({"seed": 5, "kill": {"applied": len(parts[1]) // 3}}, f)

    supervisor = FleetSupervisor(
        SHARDS,
        str(tmp_path / "fleet"),
        tenants=TENANTS,
        serve_args=["--fsync", "never"],
        fault_plans={1: plan_path},
        reconnect_wait=20.0,
    )
    port_file = str(tmp_path / "PORT")

    async def go():
        runner = asyncio.ensure_future(
            supervisor.run(front_host="127.0.0.1", front_port=0,
                           port_file=port_file)
        )
        loop = asyncio.get_event_loop()
        port = await loop.run_in_executor(
            None, lambda: wait_for_port(port_file)
        )
        report = await run_loadgen(
            items,
            port=port,
            protocol="binary",
            batch=8,
            pipeline=2,
            retry=RetryPolicy(retries=3),
            shutdown=True,
        )
        rc = await asyncio.wait_for(runner, timeout=30)
        return report, rc

    report, rc = asyncio.run(go())
    assert rc == 0
    assert report.errors == 0
    assert report.jobs == len(items)
    assert supervisor.restarts[1] >= 1, "the fault plan must have fired"
    assert supervisor.restarts[0] == 0
    # nothing double-placed: every job got exactly one verdict
    assert report.actions.get("placed", 0) + report.actions.get(
        "rejected", 0
    ) == report.jobs
