"""Checkpoint/restore: interrupted ≡ uninterrupted, bit for bit.

The randomized differential: replay a seeded trace, cut it at an
arbitrary submission index, :func:`dumps` the engine, :func:`loads` it
into a *fresh* engine (fresh algorithm instance, fresh metrics
registry), feed the remainder, and compare against the run that never
stopped — placements, float-exact usage time, **and every metric
value**.  Runs across the policy registry (Next Fit holds a live bin
reference, Random Fit a seeded RNG, the classified policies non-string
dict keys — each exercises one codec path) and in the high-load regime
where the adaptive first-fit index is active at the cut point.
"""

from __future__ import annotations

import json

import pytest

import repro.core.state as state_mod
from repro.algorithms import ALGORITHM_REGISTRY, make_algorithm
from repro.multidim import make_vector_algorithm, vector_workload
from repro.service import (
    MetricsRegistry,
    StreamingEngine,
    dumps,
    loads,
    make_admission_policy,
    snapshot_engine,
)
from repro.workloads import poisson_workload

ALL_SCALAR = sorted(ALGORITHM_REGISTRY)


def replay_with_cut(items, make_engine, make_restored, cut):
    """Stream ``items`` with a checkpoint at ``cut``; return the result."""
    ordered = sorted(items, key=lambda it: it.arrival)
    engine = make_engine()
    for it in ordered[:cut]:
        engine.submit(it)
    engine = make_restored(dumps(engine))
    for it in ordered[cut:]:
        engine.submit(it)
    return engine


def replay_straight(items, make_engine):
    engine = make_engine()
    for it in sorted(items, key=lambda it: it.arrival):
        engine.submit(it)
    return engine


def assert_same_outcome(resumed, straight):
    a, b = resumed.finish(), straight.finish()
    assert a.item_bin == b.item_bin
    assert a.total_usage_time == b.total_usage_time
    assert a.num_bins == b.num_bins
    if resumed.metrics is not None:
        assert resumed.metrics.as_dict() == straight.metrics.as_dict()
        assert resumed.metrics.expose_text() == straight.metrics.expose_text()


@pytest.mark.parametrize("algo_name", ALL_SCALAR)
@pytest.mark.parametrize("cut", [1, 40, 199])
def test_scalar_cut_equals_uninterrupted(algo_name, cut):
    items = poisson_workload(200, seed=11, mu_target=8.0, arrival_rate=4.0)

    def fresh():
        return StreamingEngine.scalar(
            make_algorithm(algo_name),
            capacity=items.capacity,
            metrics=MetricsRegistry(),
        )

    def restored(text):
        return loads(
            text, make_algorithm(algo_name), metrics=MetricsRegistry()
        )

    resumed = replay_with_cut(items, fresh, restored, cut)
    straight = replay_straight(items, fresh)
    assert_same_outcome(resumed, straight)


@pytest.mark.parametrize("algo_name", ["first-fit", "best-fit", "random-fit"])
def test_cut_with_index_active(algo_name):
    """The adaptive tree is active at the cut and must come back active."""
    items = poisson_workload(900, seed=13, mu_target=8.0, arrival_rate=300.0)
    cut = 600  # ~150 bins open here — past INDEX_THRESHOLD

    def fresh():
        return StreamingEngine.scalar(
            make_algorithm(algo_name), capacity=items.capacity
        )

    ordered = sorted(items, key=lambda it: it.arrival)
    engine = fresh()
    for it in ordered[:cut]:
        engine.submit(it)
    doc = snapshot_engine(engine)
    assert doc["index_active"], "the cut must land in the tree regime"
    restored = loads(
        json.dumps(doc), make_algorithm(algo_name)
    )
    assert restored.state._index is not None
    for it in ordered[cut:]:
        restored.submit(it)
    straight = replay_straight(items, fresh)
    a, b = restored.finish(), straight.finish()
    assert a.item_bin == b.item_bin
    assert a.total_usage_time == b.total_usage_time


def test_cut_with_forced_tree(monkeypatch):
    monkeypatch.setattr(state_mod, "INDEX_THRESHOLD", 1)
    items = poisson_workload(150, seed=3, mu_target=6.0, arrival_rate=3.0)

    def fresh():
        return StreamingEngine.scalar(
            make_algorithm("first-fit"), capacity=items.capacity
        )

    resumed = replay_with_cut(
        items, fresh, lambda t: loads(t, make_algorithm("first-fit")), 75
    )
    straight = replay_straight(items, fresh)
    assert resumed.finish().item_bin == straight.finish().item_bin


@pytest.mark.parametrize("algo_name", ["vector-first-fit", "vector-best-fit",
                                       "vector-worst-fit", "vector-next-fit"])
def test_vector_cut_equals_uninterrupted(algo_name):
    items = vector_workload(300, seed=19, dimensions=2, arrival_rate=100.0)

    def fresh():
        return StreamingEngine.vector(
            make_vector_algorithm(algo_name),
            capacity=items.capacity,
            metrics=MetricsRegistry(),
        )

    def restored(text):
        return loads(
            text, make_vector_algorithm(algo_name), metrics=MetricsRegistry()
        )

    resumed = replay_with_cut(items, fresh, restored, 150)
    straight = replay_straight(items, fresh)
    assert_same_outcome(resumed, straight)


def test_admission_state_survives_restore():
    """Queue contents and admission accounting resume exactly."""
    items = poisson_workload(300, seed=29, mu_target=8.0, arrival_rate=60.0)

    def fresh():
        return StreamingEngine.scalar(
            make_algorithm("first-fit"),
            capacity=items.capacity,
            admission=make_admission_policy("queue", max_open=10),
            metrics=MetricsRegistry(),
        )

    def restored(text):
        return loads(
            text,
            make_algorithm("first-fit"),
            admission=make_admission_policy("queue", max_open=10),
            metrics=MetricsRegistry(),
        )

    ordered = sorted(items, key=lambda it: it.arrival)
    cut = 180
    engine = fresh()
    for it in ordered[:cut]:
        engine.submit(it)
    assert engine.queue_depth > 0, "the cut must land with jobs queued"
    resumed = restored(dumps(engine))
    assert resumed.queue_depth == engine.queue_depth
    assert resumed.admission.counts == engine.admission.counts
    for it in ordered[cut:]:
        resumed.submit(it)
    straight = replay_straight(items, fresh)
    a, b = resumed.finish(), straight.finish()
    assert a.item_bin == b.item_bin
    assert a.total_usage_time == b.total_usage_time
    assert resumed.admission.counts == straight.admission.counts
    assert resumed.metrics.as_dict() == straight.metrics.as_dict()


def test_snapshot_is_json_stable():
    """The checkpoint is plain JSON and round-trips through text."""
    items = poisson_workload(80, seed=7, mu_target=6.0, arrival_rate=2.0)
    engine = StreamingEngine.scalar(
        make_algorithm("next-fit"), capacity=items.capacity
    )
    for it in sorted(items, key=lambda it: it.arrival)[:40]:
        engine.submit(it)
    text = dumps(engine)
    doc = json.loads(text)
    assert doc["version"] == 1
    assert doc["kind"] == "scalar"
    # a second dump of the restored engine is byte-identical
    assert dumps(loads(text, make_algorithm("next-fit"))) == text


def test_restore_rejects_wrong_policy():
    engine = StreamingEngine.scalar(make_algorithm("first-fit"))
    with pytest.raises(ValueError, match="policy"):
        loads(dumps(engine), make_algorithm("best-fit"))


def test_restore_rejects_unknown_version():
    engine = StreamingEngine.scalar(make_algorithm("first-fit"))
    doc = snapshot_engine(engine)
    doc["version"] = 99
    with pytest.raises(ValueError, match="version"):
        loads(json.dumps(doc), make_algorithm("first-fit"))
