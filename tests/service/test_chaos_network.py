"""Seeded network chaos against a live fleet: nothing acknowledged is lost.

The acceptance test of the failure-domain hardening: a tenant-keyed
loadgen drives a 3-shard subprocess fleet while a deterministic fault
plan abuses every link — injected delay and dropped/truncated frames on
the client and backend links, one shard partitioned and healed
mid-stream, and one worker hung (alive but silent) until the
supervisor's health probes catch and restart it.  The invariants:

- zero lost acknowledged requests (the client report ends error-free);
- zero duplicate applies (every job gets exactly one verdict, and the
  per-shard job metrics match the fault-free control run exactly);
- per-shard durable state — WAL bytes and final checkpoint — identical
  to the control run, modulo only the durable layer's own counters and
  the hardening counters that *count the injected faults themselves*
  (disconnects, dedup hits, probe-driven recoveries).

Every random decision draws from pinned seeds; injected latency rides a
virtual clock, so the suite adds no wall-clock sleeps of its own.
"""

from __future__ import annotations

import asyncio
import json
import os
import re

import pytest

from repro.service import (
    FaultInjector,
    FaultPlan,
    FleetSupervisor,
    RetryPolicy,
    partition_items,
    run_loadgen,
    tenantize,
)
from repro.service.faults import LinkFaults
from repro.service.recovery import _DURABLE_COUNTERS
from repro.service.wal import verify_wal_dir
from repro.workloads import poisson_workload

from .test_fleet import wait_for_port

pytestmark = pytest.mark.chaos_network

TENANTS = 9
SHARDS = 3
N_JOBS = 240

#: counters that legitimately differ between a faulted run and its
#: control: the durable layer's own event counts (extra recoveries,
#: replays) and the hardening counters that tally the injected faults
#: themselves.  Everything else — placements, rejections, job counts,
#: clocks — must match exactly.
EXCLUDED_COUNTERS = {name for name, _ in _DURABLE_COUNTERS} | {
    "repro_service_disconnects_total",
    "repro_service_request_timeouts_total",
    "repro_service_dropped_replies_total",
    "repro_service_deadline_exceeded_total",
}


def trace():
    items = poisson_workload(N_JOBS, seed=31, mu_target=8.0, arrival_rate=6.0)
    return tenantize(sorted(items, key=lambda it: it.arrival), TENANTS)


def fleet_run(tmp_path, name, items, *, fault_plans=None, router_kwargs=None,
              loadgen_faults=None):
    """One full fleet lifecycle: boot, loadgen, checkpoint, shutdown."""
    wal_root = str(tmp_path / name)
    supervisor = FleetSupervisor(
        SHARDS,
        wal_root,
        tenants=TENANTS,
        serve_args=["--fsync", "never"],
        fault_plans=fault_plans or {},
        reconnect_wait=20.0,
        probe_interval=0.25,
        probe_timeout=0.5,
        probe_misses=2,
        router_kwargs=router_kwargs or {},
    )
    port_file = str(tmp_path / f"{name}-PORT")

    async def go():
        runner = asyncio.ensure_future(
            supervisor.run(front_host="127.0.0.1", front_port=0,
                           port_file=port_file)
        )
        loop = asyncio.get_event_loop()
        port = await loop.run_in_executor(None, lambda: wait_for_port(port_file))
        report = await run_loadgen(
            items,
            port=port,
            protocol="binary",
            batch=8,
            pipeline=2,
            retry=RetryPolicy(retries=4),
            deadline_ms=20000.0,
            faults=loadgen_faults,
        )
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        docs = []
        for doc in ({"op": "checkpoint"}, {"op": "metrics"}, {"op": "shutdown"}):
            writer.write((json.dumps(doc) + "\n").encode())
            await writer.drain()
            docs.append(json.loads(await reader.readline()))
        writer.close()
        rc = await asyncio.wait_for(runner, timeout=60)
        return report, docs, rc

    report, (checkpoint, metrics, bye), rc = asyncio.run(go())
    assert rc == 0
    assert checkpoint["ok"] and len(checkpoint["shards"]) == SHARDS
    assert bye["ok"]
    return supervisor, report, metrics["text"]


def durable_state(wal_root):
    """Per shard: WAL segment bytes + the final checkpoint doc, with the
    legitimately-divergent counters stripped."""
    out = []
    for i in range(SHARDS):
        shard_dir = os.path.join(wal_root, f"shard-{i:02d}")
        wal_bytes = {
            name: open(os.path.join(shard_dir, name), "rb").read()
            for name in sorted(os.listdir(shard_dir))
            if name.startswith("wal-")
        }
        checkpoints = sorted(
            n for n in os.listdir(shard_dir) if n.startswith("checkpoint-")
        )
        with open(os.path.join(shard_dir, checkpoints[-1])) as f:
            doc = json.load(f)
        for name in EXCLUDED_COUNTERS:
            doc["engine"]["metrics"].pop(name, None)
        out.append({
            "wal": wal_bytes,
            "checkpoint_name": checkpoints[-1],
            "checkpoint": doc,
        })
    return out


def metric_value(text, family, shard):
    match = re.search(
        rf'{family}{{shard="{shard}"}} (\d+)', text
    )
    assert match, f"{family}{{shard={shard}}} missing from exposition"
    return int(match.group(1))


def test_network_chaos_invariant(tmp_path):
    items = trace()
    parts = partition_items(items, SHARDS, tenants=TENANTS)
    assert all(len(p) >= 20 for p in parts), "every shard must see real load"

    # -- control: same trace, same fleet shape, no faults anywhere ------------
    control_sup, control_report, _ = fleet_run(tmp_path, "control", items)
    assert control_report.errors == 0
    assert control_report.jobs == N_JOBS
    assert control_sup.restarts == [0] * SHARDS
    control_state = durable_state(str(tmp_path / "control"))

    # -- chaos: every link abused, one worker hung ----------------------------
    hang_plan = str(tmp_path / "hang.json")
    with open(hang_plan, "w") as f:
        json.dump({"seed": 5, "hang": {"request": 4}}, f)
    injector = FaultInjector(FaultPlan(
        seed=1234,
        net={
            "backend-0": {"delay_ms": 2.0, "drop_rate": 0.08},
            "backend-2": {"partition": [5, 9]},
        },
    ))
    client_faults = LinkFaults(
        "client", {"delay_ms": 1.0, "drop_rate": 0.04, "truncate_rate": 0.02},
        seed=77,
    )
    chaos_sup, chaos_report, metrics_text = fleet_run(
        tmp_path, "chaos", items,
        fault_plans={1: hang_plan},
        router_kwargs={"request_timeout": 15.0, "fault_injector": injector},
        loadgen_faults=client_faults,
    )

    # zero lost acknowledged requests, zero duplicate verdicts
    assert chaos_report.errors == 0
    assert chaos_report.jobs == N_JOBS
    assert chaos_report.actions.get("placed", 0) + chaos_report.actions.get(
        "rejected", 0
    ) == N_JOBS
    assert chaos_report.actions == control_report.actions
    assert chaos_report.drain == control_report.drain

    # the faults actually fired: the hung worker was probe-restarted,
    # the client link really dropped frames
    assert chaos_sup.probe_restarts[1] >= 1, "the hang was never detected"
    assert chaos_sup.probe_restarts[0] == 0
    assert client_faults.dropped + client_faults.truncated >= 1

    # resilience signals are on the router's merged exposition,
    # labelled per shard
    for family in (
        "repro_router_breaker_state",
        "repro_router_breaker_rejected_total",
        "repro_router_deadline_exceeded_total",
        "repro_router_probe_failures_total",
    ):
        for shard in range(SHARDS):
            metric_value(metrics_text, family, shard)
    assert metric_value(metrics_text, "repro_router_probe_failures_total", 1) >= 1
    assert (
        'repro_router_breaker_transitions_total{shard="1",state="open"}'
        in metrics_text
    )

    # per-shard durable state is identical to the fault-free control
    chaos_state = durable_state(str(tmp_path / "chaos"))
    for i in range(SHARDS):
        assert chaos_state[i]["wal"] == control_state[i]["wal"], (
            f"shard {i} WAL diverged under network faults"
        )
        assert chaos_state[i]["wal"], f"shard {i} compare is vacuous"
        assert (
            chaos_state[i]["checkpoint_name"]
            == control_state[i]["checkpoint_name"]
        ), i
        assert chaos_state[i]["checkpoint"] == control_state[i]["checkpoint"], (
            f"shard {i} checkpoint diverged under network faults"
        )
        # and the offline auditor agrees the directory is sound
        audit = verify_wal_dir(os.path.join(str(tmp_path / "chaos"), f"shard-{i:02d}"))
        assert audit["ok"], audit["errors"]


def test_hung_worker_is_probe_restarted(tmp_path):
    """The fail-silent mode alone: a worker that hangs (process alive,
    socket open, no replies) is caught by health probes and restarted
    with no client-visible errors."""
    items = trace()[:120]
    hang_plan = str(tmp_path / "hang.json")
    with open(hang_plan, "w") as f:
        json.dump({"seed": 3, "hang": {"request": 3}}, f)

    supervisor, report, metrics_text = fleet_run(
        tmp_path, "hung", items, fault_plans={1: hang_plan},
    )
    assert report.errors == 0
    assert report.jobs == len(items)
    assert supervisor.probe_restarts[1] >= 1
    assert supervisor.restarts[1] >= 1
    # the healthy shard kept answering probes with a health document
    assert supervisor.last_health[0] is not None
    assert "clock" in supervisor.last_health[0]
    assert metric_value(metrics_text, "repro_router_probe_failures_total", 1) >= 1
