"""Protocol abuse: the server answers garbage with errors, never dies.

The hardening contract from ``repro.service.server``: malformed JSON,
binary noise, oversized lines, unknown ops, bad field types, duplicate
request ids, and clients that vanish mid-request each produce one
structured ``{"ok": false, "error_type": ...}`` reply (or a clean
close) — and the *next* request still works.  Everything here runs on a
loopback socket with no sleeps, so it stays in the tier-1 suite.
"""

from __future__ import annotations

import asyncio
import json
import random

from repro.service import AllocationService, build_engine


async def fuzz_session(service_kwargs, script):
    """Start a service, run ``script(port)`` against it, return its value."""
    engine = build_engine(algorithm="first-fit")
    service = AllocationService(engine, quiet=True, **service_kwargs)
    port = await service.start("127.0.0.1", 0)
    try:
        return await script(port), service
    finally:
        service._shutdown.set()
        await service.wait_closed()


async def open_call(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)

    async def call_raw(line: bytes) -> dict:
        writer.write(line)
        await writer.drain()
        return json.loads(await reader.readline())

    async def call(payload: dict) -> dict:
        return await call_raw((json.dumps(payload) + "\n").encode())

    return reader, writer, call_raw, call


def run(script, **service_kwargs):
    return asyncio.run(fuzz_session(service_kwargs, script))


def test_malformed_lines_get_structured_errors():
    cases = [
        b'{"op": "sub\n',                      # truncated JSON
        b"{not json at all\n",
        b"\x00\xff\xfe\x80garbage\x9c\n",      # invalid UTF-8
        b"42\n",                                # JSON, but not an object
        b"[1, 2, 3]\n",
        b'"just a string"\n',
        b"null\n",
    ]

    async def script(port):
        _, writer, call_raw, call = await open_call(port)
        replies = [await call_raw(c) for c in cases]
        pong = await call({"op": "ping"})      # the server is still alive
        writer.close()
        return replies, pong

    (replies, pong), service = run(script)
    for reply in replies:
        assert reply["ok"] is False
        assert reply["error_type"] in ("malformed_json", "protocol")
        assert reply["error"]
    assert pong == {"ok": True, "pong": True}
    metrics = service.engine.metrics.as_dict()
    assert metrics["repro_service_malformed_requests_total"] == len(cases)


def test_bad_requests_are_rejected_not_fatal():
    cases = [
        {"op": "frobnicate"},
        {"no_op_at_all": 1},
        {"op": "submit"},                                       # no job
        {"op": "submit", "job": "not an object"},
        {"op": "submit", "job": {"id": 1}},                     # missing fields
        {"op": "submit", "job": {"id": "x", "size": 0.5,
                                 "arrival": 0.0, "departure": 1.0}},
        {"op": "submit", "job": {"id": 1, "size": "huge",
                                 "arrival": 0.0, "departure": 1.0}},
        {"op": "submit", "job": {"id": 1, "size": -0.5,
                                 "arrival": 0.0, "departure": 1.0}},
        {"op": "submit", "job": {"id": 1, "size": 0.5,
                                 "arrival": 5.0, "departure": 1.0}},
        {"op": "depart"},                                       # no id
        {"op": "depart", "id": 999},                            # unknown id
        {"op": "advance"},                                      # no now
        {"op": "advance", "now": "later"},
        {"op": "submit", "job": {"id": 2, "size": 0.5,
                                 "arrival": 0.0, "departure": 1e400}},
    ]

    async def script(port):
        _, writer, _, call = await open_call(port)
        replies = [await call(c) for c in cases]
        ok = await call({"op": "submit", "job": {
            "id": 3, "size": 0.5, "arrival": 0.0, "departure": 1.0}})
        writer.close()
        return replies, ok

    (replies, ok), _ = run(script)
    for case, reply in zip(cases, replies):
        assert reply["ok"] is False, case
        assert reply["error_type"] in ("protocol", "rejected"), case
    assert ok["ok"] is True
    assert ok["placement"]["action"] == "placed"


def test_oversized_line_reported_then_connection_closed():
    async def script(port):
        reader, writer, call_raw, _ = await open_call(port)
        reply = await call_raw(b'{"pad": "' + b"x" * 4096 + b'"}\n')
        closed = (await reader.readline()) == b""  # server hung up
        writer.close()
        # a fresh connection works fine
        _, writer2, _, call2 = await open_call(port)
        pong = await call2({"op": "ping"})
        writer2.close()
        return reply, closed, pong

    (reply, closed, pong), _ = run(script, max_line_bytes=1024)
    assert reply["ok"] is False
    assert reply["error_type"] == "line_too_long"
    assert closed, "the stream cannot be resynchronised mid-line"
    assert pong == {"ok": True, "pong": True}


def test_client_vanishing_mid_line_is_counted_not_crashed():
    async def script(port):
        # half a request, then the socket dies
        _, writer, _, _ = await open_call(port)
        writer.write(b'{"op": "submit", "job": {"id": 1,')
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        # an empty open-close, for good measure
        _, writer2, _, _ = await open_call(port)
        writer2.close()
        await writer2.wait_closed()
        # give the handler tasks their turn to observe the EOFs
        await asyncio.sleep(0)
        _, writer3, _, call = await open_call(port)
        stats = await call({"op": "stats"})
        metrics = await call({"op": "metrics"})
        writer3.close()
        return stats, metrics

    (stats, metrics), _ = run(script)
    assert stats["ok"] is True
    assert "repro_service_disconnects_total 1" in metrics["text"]


def test_duplicate_request_ids_place_once():
    async def script(port):
        _, writer, _, call = await open_call(port)
        job = {"id": 1, "size": 0.4, "arrival": 0.0, "departure": 2.0}
        first = await call({"op": "submit", "job": job, "request_id": "r-1"})
        second = await call({"op": "submit", "job": job, "request_id": "r-1"})
        third = await call({"op": "submit", "job": job, "request_id": "r-1"})
        stats = await call({"op": "stats"})
        writer.close()
        return first, second, third, stats

    (first, second, third, stats), _ = run(script)
    assert first["ok"] and second["ok"] and third["ok"]
    assert second["placement"] == first["placement"]
    assert second["duplicate"] is True and third["duplicate"] is True
    # the engine saw exactly one job
    assert stats["stats"]["placed"] == 1


def test_seeded_random_garbage_never_kills_the_server():
    rng = random.Random(0)
    lines = []
    for _ in range(60):
        n = rng.randrange(1, 120)
        # any byte but the protocol's line separator, so each blob is
        # exactly one request and the reply stream stays in step
        body = bytes(b for b in (rng.randrange(1, 256) for _ in range(n)) if b != 10)
        lines.append(body + b"\n")

    async def script(port):
        _, writer, call_raw, call = await open_call(port)
        failures = 0
        for line in lines:
            reply = await call_raw(line)
            failures += reply["ok"] is False
        pong = await call({"op": "ping"})
        writer.close()
        return failures, pong

    (failures, pong), service = run(script)
    assert failures == len(lines), "random bytes must never be accepted"
    assert pong == {"ok": True, "pong": True}
    assert service.requests_served == len(lines) + 1
