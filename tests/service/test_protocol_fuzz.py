"""Protocol abuse: the server answers garbage with errors, never dies.

The hardening contract from ``repro.service.server``: malformed JSON,
binary noise, oversized lines, unknown ops, bad field types, duplicate
request ids, and clients that vanish mid-request each produce one
structured ``{"ok": false, "error_type": ...}`` reply (or a clean
close) — and the *next* request still works.  The binary protocol gets
the same treatment after the handshake: truncated frames, zero-length
frames, declared lengths past the cap, unknown opcodes, garbage
payloads inside well-formed frames, and malformed batch containers.
Everything here runs on a loopback socket with no sleeps, so it stays
in the tier-1 suite.
"""

from __future__ import annotations

import asyncio
import json
import random

from repro.service import AllocationService, build_engine
from repro.service import protocol as wire


async def fuzz_session(service_kwargs, script):
    """Start a service, run ``script(port)`` against it, return its value."""
    engine = build_engine(algorithm="first-fit")
    service = AllocationService(engine, quiet=True, **service_kwargs)
    port = await service.start("127.0.0.1", 0)
    try:
        return await script(port), service
    finally:
        service._shutdown.set()
        await service.wait_closed()


async def open_call(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)

    async def call_raw(line: bytes) -> dict:
        writer.write(line)
        await writer.drain()
        return json.loads(await reader.readline())

    async def call(payload: dict) -> dict:
        return await call_raw((json.dumps(payload) + "\n").encode())

    return reader, writer, call_raw, call


def run(script, **service_kwargs):
    return asyncio.run(fuzz_session(service_kwargs, script))


def test_malformed_lines_get_structured_errors():
    cases = [
        b'{"op": "sub\n',                      # truncated JSON
        b"{not json at all\n",
        b"\x00\xff\xfe\x80garbage\x9c\n",      # invalid UTF-8
        b"42\n",                                # JSON, but not an object
        b"[1, 2, 3]\n",
        b'"just a string"\n',
        b"null\n",
    ]

    async def script(port):
        _, writer, call_raw, call = await open_call(port)
        replies = [await call_raw(c) for c in cases]
        pong = await call({"op": "ping"})      # the server is still alive
        writer.close()
        return replies, pong

    (replies, pong), service = run(script)
    for reply in replies:
        assert reply["ok"] is False
        assert reply["error_type"] in ("malformed_json", "protocol")
        assert reply["error"]
    assert pong == {"ok": True, "pong": True}
    metrics = service.engine.metrics.as_dict()
    assert metrics["repro_service_malformed_requests_total"] == len(cases)


def test_bad_requests_are_rejected_not_fatal():
    cases = [
        {"op": "frobnicate"},
        {"no_op_at_all": 1},
        {"op": "submit"},                                       # no job
        {"op": "submit", "job": "not an object"},
        {"op": "submit", "job": {"id": 1}},                     # missing fields
        {"op": "submit", "job": {"id": "x", "size": 0.5,
                                 "arrival": 0.0, "departure": 1.0}},
        {"op": "submit", "job": {"id": 1, "size": "huge",
                                 "arrival": 0.0, "departure": 1.0}},
        {"op": "submit", "job": {"id": 1, "size": -0.5,
                                 "arrival": 0.0, "departure": 1.0}},
        {"op": "submit", "job": {"id": 1, "size": 0.5,
                                 "arrival": 5.0, "departure": 1.0}},
        {"op": "depart"},                                       # no id
        {"op": "depart", "id": 999},                            # unknown id
        {"op": "advance"},                                      # no now
        {"op": "advance", "now": "later"},
        {"op": "submit", "job": {"id": 2, "size": 0.5,
                                 "arrival": 0.0, "departure": 1e400}},
    ]

    async def script(port):
        _, writer, _, call = await open_call(port)
        replies = [await call(c) for c in cases]
        ok = await call({"op": "submit", "job": {
            "id": 3, "size": 0.5, "arrival": 0.0, "departure": 1.0}})
        writer.close()
        return replies, ok

    (replies, ok), _ = run(script)
    for case, reply in zip(cases, replies):
        assert reply["ok"] is False, case
        assert reply["error_type"] in ("protocol", "rejected"), case
    assert ok["ok"] is True
    assert ok["placement"]["action"] == "placed"


def test_oversized_line_reported_then_connection_closed():
    async def script(port):
        reader, writer, call_raw, _ = await open_call(port)
        reply = await call_raw(b'{"pad": "' + b"x" * 4096 + b'"}\n')
        closed = (await reader.readline()) == b""  # server hung up
        writer.close()
        # a fresh connection works fine
        _, writer2, _, call2 = await open_call(port)
        pong = await call2({"op": "ping"})
        writer2.close()
        return reply, closed, pong

    (reply, closed, pong), _ = run(script, max_line_bytes=1024)
    assert reply["ok"] is False
    assert reply["error_type"] == "line_too_long"
    assert closed, "the stream cannot be resynchronised mid-line"
    assert pong == {"ok": True, "pong": True}


def test_client_vanishing_mid_line_is_counted_not_crashed():
    async def script(port):
        # half a request, then the socket dies
        _, writer, _, _ = await open_call(port)
        writer.write(b'{"op": "submit", "job": {"id": 1,')
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        # an empty open-close, for good measure
        _, writer2, _, _ = await open_call(port)
        writer2.close()
        await writer2.wait_closed()
        # give the handler tasks their turn to observe the EOFs
        await asyncio.sleep(0)
        _, writer3, _, call = await open_call(port)
        stats = await call({"op": "stats"})
        metrics = await call({"op": "metrics"})
        writer3.close()
        return stats, metrics

    (stats, metrics), _ = run(script)
    assert stats["ok"] is True
    assert "repro_service_disconnects_total 1" in metrics["text"]


def test_duplicate_request_ids_place_once():
    async def script(port):
        _, writer, _, call = await open_call(port)
        job = {"id": 1, "size": 0.4, "arrival": 0.0, "departure": 2.0}
        first = await call({"op": "submit", "job": job, "request_id": "r-1"})
        second = await call({"op": "submit", "job": job, "request_id": "r-1"})
        third = await call({"op": "submit", "job": job, "request_id": "r-1"})
        stats = await call({"op": "stats"})
        writer.close()
        return first, second, third, stats

    (first, second, third, stats), _ = run(script)
    assert first["ok"] and second["ok"] and third["ok"]
    assert second["placement"] == first["placement"]
    assert second["duplicate"] is True and third["duplicate"] is True
    # the engine saw exactly one job
    assert stats["stats"]["placed"] == 1


def test_seeded_random_garbage_never_kills_the_server():
    rng = random.Random(0)
    lines = []
    for _ in range(60):
        n = rng.randrange(1, 120)
        # any byte but the protocol's line separator, so each blob is
        # exactly one request and the reply stream stays in step
        body = bytes(b for b in (rng.randrange(1, 256) for _ in range(n)) if b != 10)
        lines.append(body + b"\n")

    async def script(port):
        _, writer, call_raw, call = await open_call(port)
        failures = 0
        for line in lines:
            reply = await call_raw(line)
            failures += reply["ok"] is False
        pong = await call({"op": "ping"})
        writer.close()
        return failures, pong

    (failures, pong), service = run(script)
    assert failures == len(lines), "random bytes must never be accepted"
    assert pong == {"ok": True, "pong": True}
    assert service.requests_served == len(lines) + 1

# -- binary protocol abuse ----------------------------------------------------


def _item(item_id=1, size=0.5, arrival=0.0, departure=1.0):
    from repro.core.items import Item

    return Item(
        item_id=item_id, size=size, arrival=arrival, departure=departure
    )


async def open_binary(port):
    """Connect, negotiate the binary protocol, return frame-level I/O."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(wire.hello_line())
    await writer.drain()
    ack = json.loads(await reader.readline())
    assert ack["ok"] is True and ack["protocol"] == "binary"

    async def read_frame() -> bytes:
        header = await reader.readexactly(wire.HEADER.size)
        (length,) = wire.HEADER.unpack(header)
        return await reader.readexactly(length)

    async def call_frame(payload: bytes) -> dict:
        writer.write(wire.frame(payload))
        await writer.drain()
        reply = memoryview(await read_frame())
        if reply[0] == wire.RESP_BATCH:
            return {
                "responses": [
                    wire.decode_response(sub) for sub in wire.split_batch(reply)
                ]
            }
        return wire.decode_response(reply)

    return reader, writer, read_frame, call_frame


def test_bad_hello_is_a_protocol_error_and_stays_json():
    async def script(port):
        _, writer, _, call = await open_call(port)
        bad_version = await call(
            {"op": "hello", "protocol": "binary", "version": 999}
        )
        bad_protocol = await call({"op": "hello", "protocol": "carrier-pigeon"})
        # the connection never switched: JSON still works
        pong = await call({"op": "ping"})
        writer.close()
        return bad_version, bad_protocol, pong

    (bad_version, bad_protocol, pong), _ = run(script)
    assert bad_version["ok"] is False
    assert bad_version["error_type"] == "protocol"
    assert bad_protocol["ok"] is False
    assert bad_protocol["error_type"] == "protocol"
    assert pong == {"ok": True, "pong": True}


def test_binary_roundtrip_then_json_errors_stay_structured():
    async def script(port):
        _, writer, _, call_frame = await open_binary(port)
        placed = await call_frame(wire.encode_submit(_item()))
        departed = await call_frame(wire.encode_depart(1, now=0.5))
        clock = await call_frame(wire.encode_advance(5.0))
        writer.close()
        return placed, departed, clock

    (placed, departed, clock), _ = run(script)
    assert placed["ok"] is True
    assert placed["placement"]["action"] == "placed"
    assert departed["ok"] is True
    assert clock["ok"] is True and clock["clock"] == 5.0


def test_binary_zero_length_frame_survives():
    async def script(port):
        reader, writer, read_frame, call_frame = await open_binary(port)
        writer.write(wire.HEADER.pack(0))  # empty frame: no payload at all
        await writer.drain()
        reply = wire.decode_response(memoryview(await read_frame()))
        ok = await call_frame(wire.encode_submit(_item()))
        writer.close()
        return reply, ok

    (reply, ok), service = run(script)
    assert reply["ok"] is False
    assert reply["error_type"] == "malformed_frame"
    assert ok["ok"] is True
    metrics = service.engine.metrics.as_dict()
    assert metrics["repro_service_malformed_requests_total"] == 1


def test_binary_unknown_opcode_survives():
    async def script(port):
        _, writer, read_frame, call_frame = await open_binary(port)
        writer.write(wire.frame(b"\xee" + b"payload"))
        await writer.drain()
        reply = wire.decode_response(memoryview(await read_frame()))
        ok = await call_frame(wire.encode_submit(_item()))
        writer.close()
        return reply, ok

    (reply, ok), _ = run(script)
    assert reply["ok"] is False
    assert reply["error_type"] == "protocol"
    assert ok["ok"] is True


def test_binary_oversized_declared_length_closes_connection():
    async def script(port):
        reader, writer, read_frame, _ = await open_binary(port)
        writer.write(wire.HEADER.pack(10_000))  # past max_line_bytes
        await writer.drain()
        reply = wire.decode_response(memoryview(await read_frame()))
        closed = (await reader.read(1)) == b""  # server hung up
        writer.close()
        # a fresh binary connection negotiates and works fine
        _, writer2, _, call2 = await open_binary(port)
        ok = await call2(wire.encode_submit(_item()))
        writer2.close()
        return reply, closed, ok

    (reply, closed, ok), _ = run(script, max_line_bytes=1024)
    assert reply["ok"] is False
    assert reply["error_type"] == "frame_too_long"
    assert closed, "the stream cannot be resynchronised mid-frame"
    assert ok["ok"] is True


def test_binary_client_vanishing_mid_frame_counts_disconnect():
    async def script(port):
        # a header promising 100 bytes, then only 10 arrive
        _, writer, _, _ = await open_binary(port)
        writer.write(wire.HEADER.pack(100) + b"x" * 10)
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        # half a *header*, then the socket dies
        _, writer2, _, _ = await open_binary(port)
        writer2.write(b"\x00\x00")
        await writer2.drain()
        writer2.close()
        await writer2.wait_closed()
        await asyncio.sleep(0)
        _, writer3, _, call = await open_call(port)
        metrics = await call({"op": "metrics"})
        writer3.close()
        return metrics

    metrics, _ = run(script)
    assert "repro_service_disconnects_total 2" in metrics["text"]


def test_binary_malformed_submit_payloads_survive():
    good = wire.encode_submit(_item())
    cases = [
        good[:8],                      # truncated mid-struct
        good + b"trailing-bytes",      # declared fields + junk after
        bytes([wire.OP_SUBMIT]),       # opcode alone, no body
        bytes([wire.OP_DEPART]) + b"\x01",     # depart body too short
        bytes([wire.OP_ADVANCE]) + b"\x00" * 3,  # advance body too short
    ]

    async def script(port):
        _, writer, _, call_frame = await open_binary(port)
        replies = [await call_frame(c) for c in cases]
        ok = await call_frame(wire.encode_submit(_item()))
        writer.close()
        return replies, ok

    (replies, ok), service = run(script)
    for case, reply in zip(cases, replies):
        assert reply["ok"] is False, case
        assert reply["error_type"] == "malformed_frame", case
    assert ok["ok"] is True
    metrics = service.engine.metrics.as_dict()
    assert metrics["repro_service_malformed_requests_total"] == len(cases)


def test_binary_malformed_batches_survive():
    sub = wire.encode_submit(_item())
    nested = wire.encode_batch([wire.encode_batch([sub])])
    truncated = wire.encode_batch([sub])[:-3]  # inner length overruns
    lying = bytes([wire.OP_BATCH]) + wire.HEADER.pack(10_000) + b"x" * 4

    async def script(port):
        _, writer, _, call_frame = await open_binary(port)
        replies = [await call_frame(c) for c in (nested, truncated, lying)]
        ok = await call_frame(wire.encode_submit(_item()))
        writer.close()
        return replies, ok

    (replies, ok), _ = run(script)
    for reply in replies:
        doc = reply
        if "responses" in reply:       # a BATCH of error sub-responses
            doc = reply["responses"][0]
        assert doc["ok"] is False
        assert doc["error_type"] == "malformed_frame"
    assert ok["ok"] is True


def test_binary_duplicate_request_ids_place_once():
    payload = wire.encode_submit(_item(size=0.4, departure=2.0), request_id="r-9")

    async def script(port):
        _, writer, _, call_frame = await open_binary(port)
        first = await call_frame(payload)
        second = await call_frame(payload)
        batch = await call_frame(wire.encode_batch([payload, payload]))
        writer.close()
        return first, second, batch

    (first, second, batch), service = run(script)
    assert first["ok"] and second["ok"]
    assert second["placement"] == first["placement"]
    assert second["duplicate"] is True
    for doc in batch["responses"]:
        assert doc["ok"] is True
        assert doc["placement"] == first["placement"]
        assert doc["duplicate"] is True
    assert service.engine.stats()["placed"] == 1


def test_binary_seeded_random_garbage_never_kills_the_server():
    rng = random.Random(7)
    frames = [
        bytes(rng.randrange(256) for _ in range(rng.randrange(1, 80)))
        for _ in range(60)
    ]

    async def script(port):
        _, writer, _, call_frame = await open_binary(port)
        failures = 0
        for payload in frames:
            reply = await call_frame(payload)
            doc = reply["responses"][0] if "responses" in reply else reply
            failures += doc["ok"] is False
        ok = await call_frame(wire.encode_submit(_item()))
        writer.close()
        return failures, ok

    (failures, ok), _ = run(script)
    assert failures == len(frames), "random payloads must never be accepted"
    assert ok["ok"] is True
