"""Admission control: reject / queue / shed semantics and accounting."""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.core.items import Item
from repro.service import (
    ADMIT,
    AdmitAll,
    LoadShedding,
    MetricsRegistry,
    OpenServerBudget,
    StreamingEngine,
    make_admission_policy,
)
from repro.workloads import poisson_workload


def engine_with(policy, **kwargs):
    return StreamingEngine.scalar(
        make_algorithm("first-fit"), admission=policy, **kwargs
    )


class TestFactory:
    def test_specs(self):
        assert isinstance(make_admission_policy("admit-all"), AdmitAll)
        assert isinstance(
            make_admission_policy("reject", max_open=3), OpenServerBudget
        )
        queue = make_admission_policy("queue", max_open=3)
        assert isinstance(queue, OpenServerBudget) and queue.on_full == "queue"
        assert isinstance(make_admission_policy("shed", max_load=2.0), LoadShedding)

    def test_missing_budget_is_an_error(self):
        with pytest.raises(ValueError, match="max-open"):
            make_admission_policy("reject")
        with pytest.raises(ValueError, match="max-load"):
            make_admission_policy("shed")
        with pytest.raises(ValueError, match="unknown"):
            make_admission_policy("nope")

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            OpenServerBudget(0)
        with pytest.raises(ValueError):
            OpenServerBudget(1, on_full="shed")
        with pytest.raises(ValueError):
            LoadShedding(0.0)


class TestOpenServerBudgetReject:
    def test_cap_is_enforced_but_fitting_jobs_still_admitted(self):
        engine = engine_with(OpenServerBudget(2, on_full="reject"))
        # three large jobs: the third would need a third server -> rejected
        assert engine.submit(Item(1, 0.9, 0.0, 10.0)).action == "placed"
        assert engine.submit(Item(2, 0.9, 0.0, 10.0)).action == "placed"
        assert engine.submit(Item(3, 0.9, 0.0, 10.0)).action == "rejected"
        # a small job fits into an open server: no new quota needed
        assert engine.submit(Item(4, 0.05, 1.0, 5.0)).action == "placed"
        assert engine.state.num_open == 2
        counts = engine.admission.counts
        assert counts["admit"] == 3 and counts["reject"] == 1
        # rejected jobs are not in the result
        result = engine.finish()
        assert result.num_bins == 2
        assert 3 not in result.item_bin

    def test_bulk_rejection_accounting(self):
        items = poisson_workload(400, seed=5, mu_target=8.0, arrival_rate=80.0)
        engine = engine_with(
            OpenServerBudget(5, on_full="reject"), capacity=items.capacity
        )
        placements = [
            engine.submit(it) for it in sorted(items, key=lambda it: it.arrival)
        ]
        rejected = sum(1 for p in placements if p.action == "rejected")
        assert rejected > 0
        assert engine.admission.counts["reject"] == rejected
        assert engine.admission.counts["admit"] == len(items) - rejected
        result = engine.finish()
        assert result.num_bins <= 5 or engine.state.num_open == 0
        assert len(result.item_bin) == len(items) - rejected


class TestOpenServerBudgetQueue:
    def test_queued_job_placed_after_departure(self):
        engine = engine_with(
            OpenServerBudget(1, on_full="queue"), metrics=MetricsRegistry()
        )
        engine.submit(Item(1, 0.9, 0.0, 4.0))
        p = engine.submit(Item(2, 0.9, 1.0, 10.0))
        assert p.action == "queued"
        assert engine.queue_depth == 1
        # item 1 departs at t=4: the queue head gets its server
        engine.advance(5.0)
        assert engine.queue_depth == 0
        result = engine.finish()
        assert result.item_bin == {1: 0, 2: 1}
        # queued-then-placed is accounted under both queue and admit
        assert engine.admission.counts["queue"] == 1
        assert engine.admission.counts["admit"] == 2
        wait = engine.metrics.get("repro_service_queue_wait")
        assert wait.count == 1
        assert wait.sum == pytest.approx(3.0)  # queued at 1, placed at 4

    def test_expired_queued_job_is_dropped(self):
        engine = engine_with(OpenServerBudget(1, on_full="queue"))
        engine.submit(Item(1, 0.9, 0.0, 10.0))
        assert engine.submit(Item(2, 0.9, 1.0, 3.0)).action == "queued"
        # item 2's departure (t=3) passes while it still waits: dropped
        result = engine.finish()
        assert 2 not in result.item_bin
        assert engine.admission.counts["shed"] == 1

    def test_fifo_head_of_line_blocking(self):
        engine = engine_with(OpenServerBudget(1, on_full="queue"))
        engine.submit(Item(1, 0.9, 0.0, 4.0))
        engine.submit(Item(2, 0.8, 1.0, 20.0))  # queued first
        engine.submit(Item(3, 0.2, 2.0, 20.0))  # doesn't fit bin 0: waits
        assert engine.queue_depth == 2
        engine.advance(4.0)
        # both dequeue at t=4, head first: 2 opens bin 1, 3 fits behind it
        result = engine.finish()
        assert result.item_bin[2] == 1
        assert result.item_bin[3] == 1


class TestLoadShedding:
    def test_shed_above_ceiling(self):
        engine = engine_with(LoadShedding(1.0))
        assert engine.submit(Item(1, 0.6, 0.0, 10.0)).action == "placed"
        assert engine.submit(Item(2, 0.6, 1.0, 10.0)).action == "shed"
        assert engine.submit(Item(3, 0.3, 2.0, 10.0)).action == "placed"
        counts = engine.admission.counts
        assert counts["admit"] == 2 and counts["shed"] == 1

    def test_load_recovers_after_departures(self):
        engine = engine_with(LoadShedding(0.5))
        engine.submit(Item(1, 0.5, 0.0, 2.0))
        assert engine.submit(Item(2, 0.5, 1.0, 3.0)).action == "shed"
        # item 1 departs at 2: load drops to zero, admissions resume
        assert engine.submit(Item(3, 0.5, 2.5, 4.0)).action == "placed"
        engine.finish()


class TestPlacementObject:
    def test_accepted_property(self):
        engine = engine_with(OpenServerBudget(1, on_full="queue"))
        placed = engine.submit(Item(1, 0.9, 0.0, 5.0))
        queued = engine.submit(Item(2, 0.9, 1.0, 9.0))
        assert placed.accepted and queued.accepted
        d = placed.to_dict()
        assert d["action"] == "placed" and d["bin"] == 0 and d["new_bin"] is True

    def test_rejected_not_accepted(self):
        engine = engine_with(OpenServerBudget(1, on_full="reject"))
        engine.submit(Item(1, 0.9, 0.0, 5.0))
        p = engine.submit(Item(2, 0.9, 1.0, 9.0))
        assert not p.accepted
        assert p.bin_index is None
