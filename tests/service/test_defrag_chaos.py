"""Chaos: kill-during-migration recovery, swept over every event index.

The migration extension of the crash-recovery differential in
``test_recovery.py``: a seeded trace interleaved with durable ``defrag``
passes, killed at every WAL position in each of the three windows —
before the append (nothing durable), between the append and the move
(the intent record is logged but the items never moved), and after the
move — must recover to the *exact* packing and migration counters of
the run that never crashed.

Retry discipline: submits are absorbed by the request-id dedup window
as usual.  A ``defrag`` record carries no request id, so the restarted
client applies the ordinal-skip rule instead — the recovered engine's
``defrag_runs`` counter says how many passes are already durable (every
pass in this trace is effective by construction, so passes and counter
increments are 1:1), and the client skips exactly that many before
re-issuing.  This is the documented operational contract for resuming a
defragmenter after a crash.
"""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.service import (
    DurableEngine,
    FaultInjector,
    FaultPlan,
    KillPoint,
    StreamingEngine,
    WriteAheadLog,
    recover,
)
from repro.workloads import poisson_workload

pytestmark = pytest.mark.chaos

CHECKPOINT_EVERY = 7  # small, so kills land on both sides of checkpoints
DEFRAG_BUDGET = 2


def churn_ops(n=50, seed=3, arrival_rate=20.0, every=2):
    """A high-churn trace with ``defrag`` ops where they will be effective.

    The builder simulates the trace as it lays it down and only inserts
    a ``("defrag", budget)`` op at positions where the planner's move
    list is non-empty *at that state* — so in the real runs (which see
    the identical deterministic state at that position) every logged
    pass moves something, which is what keeps ``defrag_runs`` usable as
    the retry ordinal.
    """
    items = poisson_workload(
        n, seed=seed, mu_target=6.0, arrival_rate=arrival_rate
    )
    sim = StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=items.capacity
    )
    ops = []
    for i, it in enumerate(sorted(items, key=lambda x: x.arrival)):
        ops.append(("submit", it))
        sim.submit(it)
        if i % every == every - 1 and sim.plan_defrag(DEFRAG_BUDGET):
            ops.append(("defrag", DEFRAG_BUDGET))
            sim.defrag(DEFRAG_BUDGET)
    return items.capacity, ops


def apply_op(engine, i, op, durable):
    kind, arg = op
    if kind == "submit":
        if durable:
            engine.submit(arg, request_id=f"op-{i}")
        else:
            engine.submit(arg)
    elif kind == "defrag":
        moved = engine.defrag(arg)
        assert moved > 0, f"defrag op {i} was a no-op; the trace is broken"
    else:
        engine.advance(arg)


def counters(engine):
    return (engine.migrations, engine.defrag_runs, engine.bins_evacuated)


def baseline(make_engine, ops):
    engine = make_engine()
    for i, op in enumerate(ops):
        apply_op(engine, i, op, durable=False)
    return engine.finish(), counters(engine)


def run_with_kill(directory, make_engine, ops, point, hit):
    """One crash at (point, hit); returns (result, counters) after recovery."""
    plan = FaultPlan(seed=1, kill={point: hit})
    injector = FaultInjector(plan)
    wal = WriteAheadLog(directory, fsync="never")
    durable = DurableEngine(
        make_engine(), wal, checkpoint_every=CHECKPOINT_EVERY, injector=injector
    )
    killed_at = None
    try:
        for i, op in enumerate(ops):
            apply_op(durable, i, op, durable=True)
        durable.finish()
    except KillPoint:
        killed_at = i
    finally:
        wal.close()
    assert killed_at is not None, f"kill {point}@{hit} never fired"

    recovered, _ = recover(
        directory,
        engine_builder=make_engine,
        fsync="never",
        checkpoint_every=CHECKPOINT_EVERY,
    )
    # ordinal-skip: passes already durable (logged, hence replayed) stay
    # skipped; submits retry under their original request ids instead
    durable_runs = recovered.engine.defrag_runs
    ordinal = sum(1 for op in ops[:killed_at] if op[0] == "defrag")
    for i in range(killed_at, len(ops)):
        if ops[i][0] == "defrag":
            ordinal += 1
            if ordinal <= durable_runs:
                continue
        apply_op(recovered, i, ops[i], durable=True)
    stats = counters(recovered.engine)
    result = recovered.finish()
    recovered.close()
    return result, stats


@pytest.mark.parametrize("point", ["wal.write", "wal.appended", "applied"])
def test_kill_during_migration_at_every_event_index(tmp_path, point):
    capacity, ops = churn_ops()
    n_defrags = sum(1 for op in ops if op[0] == "defrag")
    assert n_defrags >= 3, "trace must actually exercise the defragmenter"
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=capacity
    )
    expected, expected_counters = baseline(make_engine, ops)
    assert expected_counters[1] == n_defrags

    for hit in range(1, len(ops) + 1):
        result, stats = run_with_kill(
            str(tmp_path / f"{point}-{hit}"), make_engine, ops, point, hit
        )
        assert result.item_bin == expected.item_bin, f"{point}@{hit}"
        assert result.total_usage_time == expected.total_usage_time, \
            f"{point}@{hit}"
        assert result.num_bins == expected.num_bins, f"{point}@{hit}"
        assert stats == expected_counters, f"{point}@{hit}"
