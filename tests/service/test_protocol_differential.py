"""Wire-protocol differential: JSON and binary are the same service.

The binary protocol is a pure *encoding* change — the contract is that
a seeded workload replayed over JSON lines, over single binary frames,
over batched frames, and over a pipelined batched client leaves behind
literally the same service: the same engine snapshot (compared as the
canonical checkpoint serialization, so bit-identical), the same engine
metrics, the same WAL bytes on disk, and the same state after a full
crash-recovery round trip.  Scalar and vector engines both.  Any
divergence — a field dropped in encoding, a request double-applied by
pipelining, a WAL record batched differently — fails the byte compare.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.algorithms import make_algorithm
from repro.multidim import make_vector_algorithm, vector_workload
from repro.service import (
    AllocationService,
    DurableEngine,
    MetricsRegistry,
    StreamingEngine,
    WriteAheadLog,
    recover,
    run_loadgen,
)
from repro.service.snapshot import dumps
from repro.workloads import poisson_workload

N_JOBS = 200  # stays under the default fsync (512) and checkpoint (1000)

#: (name, run_loadgen keyword arguments) — every config must converge
#: to the byte-identical service state.
CLIENTS = [
    ("json", {}),
    ("binary", {"protocol": "binary"}),
    ("binary-batched", {"protocol": "binary", "batch": 16}),
    ("binary-pipelined", {"protocol": "binary", "batch": 16, "pipeline": 4}),
]


def scalar_items():
    items = poisson_workload(N_JOBS, seed=23, mu_target=8.0, arrival_rate=6.0)
    return sorted(items, key=lambda it: it.arrival)


def vector_items():
    items = vector_workload(N_JOBS, seed=23, dimensions=2, arrival_rate=6.0)
    return sorted(items, key=lambda it: it.arrival)


def make_scalar_engine():
    return StreamingEngine.scalar(
        make_algorithm("first-fit"), metrics=MetricsRegistry()
    )


def make_vector_engine():
    return StreamingEngine.vector(
        make_vector_algorithm("vector-first-fit"),
        capacity=(1.0, 1.0),
        metrics=MetricsRegistry(),
    )


def wal_bytes(directory) -> bytes:
    blobs = []
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as f:
            blobs.append(f.read())
    return b"".join(blobs)


def replay(tmp_path, name, items, make_engine, loadgen_kwargs) -> dict:
    """One full client run; returns the service-state fingerprint."""
    wal_dir = str(tmp_path / name)

    async def go():
        engine = DurableEngine(
            make_engine(), WriteAheadLog(wal_dir, fsync="never")
        )
        service = AllocationService(engine, quiet=True)
        port = await service.start("127.0.0.1", 0)
        waiter = asyncio.ensure_future(service.wait_closed())
        report = await run_loadgen(
            items, port=port, shutdown=True, **loadgen_kwargs
        )
        await waiter
        return engine, report

    engine, report = asyncio.run(go())
    snapshot = dumps(engine.engine)
    metrics = engine.engine.metrics.as_dict()
    engine.close()
    recovered, _ = recover(wal_dir, engine_builder=make_engine, fsync="never")
    recovered_snapshot = dumps(recovered.engine)
    recovered.close()
    return {
        "report": report,
        "snapshot": snapshot,
        "metrics": metrics,
        "wal": wal_bytes(wal_dir),
        "recovered": recovered_snapshot,
    }


@pytest.mark.parametrize(
    "items_factory,engine_factory",
    [(scalar_items, make_scalar_engine), (vector_items, make_vector_engine)],
    ids=["scalar", "vector"],
)
def test_every_client_config_leaves_identical_state(
    tmp_path, items_factory, engine_factory
):
    items = items_factory()
    results = {
        name: replay(tmp_path, name, items, engine_factory, kwargs)
        for name, kwargs in CLIENTS
    }
    baseline = results["json"]
    assert baseline["report"].jobs == N_JOBS
    assert baseline["report"].errors == 0
    for name, got in results.items():
        # client-side tallies agree before we even look at the server
        assert got["report"].jobs == N_JOBS, name
        assert got["report"].errors == 0, name
        assert got["report"].actions == baseline["report"].actions, name
        # the server state is byte-identical across every wire format
        assert got["snapshot"] == baseline["snapshot"], name
        assert got["metrics"] == baseline["metrics"], name
        assert got["wal"] == baseline["wal"], name
        assert got["recovered"] == baseline["recovered"], name
    # recovery itself is lossless: the recovered engine re-serializes to
    # the snapshot the live engine had when it shut down, up to the
    # recovery-owned counters (recovery itself cuts a checkpoint)
    import json

    live = json.loads(baseline["snapshot"])
    recovered = json.loads(baseline["recovered"])
    live.pop("metrics", None)
    recovered.pop("metrics", None)
    assert recovered == live
