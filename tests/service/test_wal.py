"""The write-ahead log: record format, rotation, torn tails, corruption.

The WAL is the durability floor of the service — every guarantee the
recovery layer makes reduces to these properties: records round-trip
exactly, a torn *tail* is tolerated and truncated on reopen, any other
defect (bit rot, a sequence gap) is loud corruption, and segments rotate
and prune so the log never grows without bound.
"""

from __future__ import annotations

import os

import pytest

from repro.service.wal import (
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    read_segment,
    replay_wal,
    verify_wal_dir,
    wal_segments,
)


def test_roundtrip_in_order(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    payloads = [{"op": "submit", "job": [i, 0.5, 0.0, 1.0]} for i in range(20)]
    seqs = [wal.append(p) for p in payloads]
    wal.close()
    assert seqs == list(range(1, 21))
    records, torn = replay_wal(str(tmp_path))
    assert torn == 0
    assert [r.seq for r in records] == seqs
    assert [r.payload for r in records] == payloads


def test_preserialized_payload_equals_dict_payload(tmp_path):
    """The hot-path str form and the dict form decode identically."""
    import json

    a = WriteAheadLog(str(tmp_path / "a"), fsync="never")
    b = WriteAheadLog(str(tmp_path / "b"), fsync="never")
    payload = {"job": [7, 0.25, 0.0, 3.5], "op": "submit", "sd": True}
    a.append(payload)
    b.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    a.close()
    b.close()
    rec_a, _ = replay_wal(str(tmp_path / "a"))
    rec_b, _ = replay_wal(str(tmp_path / "b"))
    assert rec_a[0].payload == rec_b[0].payload
    # identical serialization means identical bytes (CRC included)
    assert (
        open(wal_segments(str(tmp_path / "a"))[0], "rb").read()
        == open(wal_segments(str(tmp_path / "b"))[0], "rb").read()
    )


def test_replay_after_seq_skips_checkpointed_records(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    for i in range(10):
        wal.append({"op": "advance", "now": float(i)})
    wal.close()
    records, _ = replay_wal(str(tmp_path), after_seq=6)
    assert [r.seq for r in records] == [7, 8, 9, 10]


def test_rotation_and_prune(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="never", segment_bytes=200)
    for i in range(30):
        wal.append({"op": "advance", "now": float(i)})
    segments = wal_segments(str(tmp_path))
    assert len(segments) > 2, "the tiny segment size must force rotation"
    records, _ = replay_wal(str(tmp_path))
    assert [r.seq for r in records] == list(range(1, 31))
    # prune everything covered by a checkpoint at seq 30: every segment
    # but the live tail goes away, and replay still works
    removed = wal.prune(30)
    assert removed == len(segments) - 1
    assert len(wal_segments(str(tmp_path))) == 1
    wal.append({"op": "drain"})
    wal.close()
    records, _ = replay_wal(str(tmp_path))
    assert records[-1].seq == 31


def test_torn_tail_is_tolerated_and_truncated_on_reopen(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    for i in range(5):
        wal.append({"op": "advance", "now": float(i)})
    wal.close()
    path = wal_segments(str(tmp_path))[0]
    size = os.path.getsize(path)
    with open(path, "ab") as f:
        f.write(b"6 deadbeef {half a rec")  # a crash mid-write
    records, torn = replay_wal(str(tmp_path))
    assert [r.seq for r in records] == [1, 2, 3, 4, 5]
    assert torn == os.path.getsize(path) - size
    # reopening for append truncates the torn bytes and resumes the
    # sequence where the intact prefix ended
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    assert wal.recovered_torn_bytes == torn
    assert os.path.getsize(path) == size
    assert wal.append({"op": "drain"}) == 6
    wal.close()
    records, torn = replay_wal(str(tmp_path))
    assert [r.seq for r in records] == [1, 2, 3, 4, 5, 6]
    assert torn == 0


def test_corruption_before_the_tail_raises(tmp_path):
    """Bit rot in a non-final segment is not a torn tail — it is loss."""
    wal = WriteAheadLog(str(tmp_path), fsync="never", segment_bytes=120)
    for i in range(12):
        wal.append({"op": "advance", "now": float(i)})
    wal.close()
    first = wal_segments(str(tmp_path))[0]
    data = bytearray(open(first, "rb").read())
    data[len(data) // 2] ^= 0xFF
    with open(first, "wb") as f:
        f.write(data)
    with pytest.raises(WalCorruptionError):
        replay_wal(str(tmp_path))
    with pytest.raises(WalCorruptionError):
        read_segment(first)


def test_sequence_gap_raises(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    for i in range(4):
        wal.append({"op": "advance", "now": float(i)})
    wal.close()
    path = wal_segments(str(tmp_path))[0]
    lines = open(path, "rb").read().splitlines(keepends=True)
    with open(path, "wb") as f:
        f.write(lines[0] + lines[2] + lines[3])  # drop record 2
    with pytest.raises(WalCorruptionError, match="sequence gap"):
        replay_wal(str(tmp_path))


def test_fsync_policies(tmp_path):
    always = WriteAheadLog(str(tmp_path / "a"), fsync="always")
    for i in range(3):
        always.append({"op": "advance", "now": float(i)})
    assert always.fsyncs == 3
    always.close()

    never = WriteAheadLog(str(tmp_path / "n"), fsync="never")
    for i in range(3):
        never.append({"op": "advance", "now": float(i)})
    never.close()
    assert never.fsyncs == 0

    interval = WriteAheadLog(str(tmp_path / "i"), fsync="interval", fsync_every=4)
    for i in range(3):
        interval.append({"op": "advance", "now": float(i)})
    interval.sync()  # the checkpoint barrier forces one regardless
    assert interval.fsyncs >= 1
    interval.close()
    # everything written under every policy is replayable
    for sub in ("a", "n", "i"):
        records, _ = replay_wal(str(tmp_path / sub))
        assert len(records) == 3


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError, match="fsync mode"):
        WriteAheadLog(str(tmp_path), fsync="sometimes")
    with pytest.raises(ValueError, match="fsync_every"):
        WriteAheadLog(str(tmp_path), fsync_every=0)
    with pytest.raises(ValueError, match="segment_bytes"):
        WriteAheadLog(str(tmp_path), segment_bytes=0)


def test_append_after_close_raises(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    wal.close()
    with pytest.raises(WalError, match="closed"):
        wal.append({"op": "drain"})


def test_io_hook_error_leaves_log_usable(tmp_path):
    """An injected write error refuses the record, nothing else."""
    fail_next = {"on": False}

    def hook(op, seq):
        if op == "write" and fail_next["on"]:
            fail_next["on"] = False
            raise OSError("injected")

    wal = WriteAheadLog(str(tmp_path), fsync="never", io_hook=hook)
    wal.append({"op": "advance", "now": 1.0})
    fail_next["on"] = True
    with pytest.raises(OSError):
        wal.append({"op": "advance", "now": 2.0})
    assert wal.append({"op": "advance", "now": 3.0}) == 2
    wal.close()
    records, _ = replay_wal(str(tmp_path))
    assert [r.payload["now"] for r in records] == [1.0, 3.0]


def test_append_many_bytes_equal_sequential_appends(tmp_path):
    """Group commit is an I/O optimisation, not a format change.

    The same payloads through ``append_many`` and through one-at-a-time
    ``append`` leave byte-identical segment files (CRCs included) — the
    invariant the wire-protocol differential relies on — while paying
    one fsync barrier per batch instead of one per record.
    """
    payloads = [
        {"op": "submit", "job": [i, 0.5, float(i), float(i) + 1.0]}
        for i in range(20)
    ]

    one = WriteAheadLog(str(tmp_path / "one"), fsync="always")
    for p in payloads:
        one.append(p)
    one.close()

    many = WriteAheadLog(str(tmp_path / "many"), fsync="always")
    seqs = many.append_many(payloads[:8])
    seqs += many.append_many(payloads[8:])
    assert many.append_many([]) == []
    assert many.fsyncs == 2, "one barrier per batch is the group-commit payoff"
    many.close()

    assert seqs == list(range(1, 21))
    assert (
        open(wal_segments(str(tmp_path / "one"))[0], "rb").read()
        == open(wal_segments(str(tmp_path / "many"))[0], "rb").read()
    )
    records, torn = replay_wal(str(tmp_path / "many"))
    assert torn == 0
    assert [r.payload for r in records] == payloads


# -- offline verification (`repro wal verify`) --------------------------------
def _filled_wal(directory, n=12, segment_bytes=None):
    kwargs = {"fsync": "never"}
    if segment_bytes is not None:
        kwargs["segment_bytes"] = segment_bytes
    wal = WriteAheadLog(str(directory), **kwargs)
    for i in range(n):
        wal.append({"op": "advance", "now": float(i)})
    wal.close()


def test_verify_clean_directory(tmp_path):
    _filled_wal(tmp_path, n=12, segment_bytes=120)
    report = verify_wal_dir(str(tmp_path))
    assert report["ok"], report["errors"]
    assert report["records"] == 12
    assert report["first_seq"] == 1 and report["last_seq"] == 12
    assert len(report["segments"]) > 1, "rotation must be exercised"
    assert report["torn_tail_bytes"] == 0
    assert report["manifest"] == {"present": False, "fingerprint_ok": None}


def test_verify_tolerates_a_torn_tail(tmp_path):
    _filled_wal(tmp_path)
    seg = wal_segments(str(tmp_path))[-1]
    data = open(seg, "rb").read()
    with open(seg, "wb") as f:
        f.write(data[:-7])  # a crash half-wrote the final record
    report = verify_wal_dir(str(tmp_path))
    assert report["ok"], report["errors"]
    assert report["torn_tail_bytes"] > 0
    assert report["records"] == 11


def test_verify_flags_midlog_corruption(tmp_path):
    _filled_wal(tmp_path)
    seg = wal_segments(str(tmp_path))[0]
    data = bytearray(open(seg, "rb").read())
    data[10] ^= 0xFF  # bit rot inside the FIRST record
    with open(seg, "wb") as f:
        f.write(data)
    report = verify_wal_dir(str(tmp_path))
    assert not report["ok"]
    assert any("mid-log corruption" in e for e in report["errors"])
    assert report["torn_tail_bytes"] == 0, "this must NOT pass as a torn tail"


def test_verify_flags_a_sequence_gap(tmp_path):
    _filled_wal(tmp_path)
    seg = wal_segments(str(tmp_path))[0]
    lines = open(seg, "rb").readlines()
    with open(seg, "wb") as f:
        f.writelines(lines[:5] + lines[6:])  # record 6 vanished
    report = verify_wal_dir(str(tmp_path))
    assert not report["ok"]
    assert any("sequence gap" in e for e in report["errors"])


def test_verify_flags_unreadable_checkpoint_and_coverage_gap(tmp_path):
    import json as jsonlib

    from repro.service.snapshot import SNAPSHOT_VERSION

    _filled_wal(tmp_path)
    # rename the log so it claims to start at seq 7 and drop records 1-6:
    # the newest loadable checkpoint (wal_seq 5) no longer meets the log
    seg = wal_segments(str(tmp_path))[0]
    lines = open(seg, "rb").readlines()
    os.remove(seg)
    with open(os.path.join(str(tmp_path), "wal-0000000007.log"), "wb") as f:
        f.writelines(lines[6:])
    good = tmp_path / "checkpoint-0000000005.json"
    good.write_text(jsonlib.dumps(
        {"version": SNAPSHOT_VERSION, "wal_seq": 5, "engine": {}}
    ))
    bad = tmp_path / "checkpoint-0000000009.json"
    bad.write_text('{"version": 1, "wal_')
    report = verify_wal_dir(str(tmp_path))
    assert not report["ok"]
    assert any("unreadable checkpoint" in e for e in report["errors"])
    assert any("log coverage gap" in e for e in report["errors"])
    by_file = {c["file"]: c for c in report["checkpoints"]}
    assert by_file["checkpoint-0000000005.json"]["ok"]
    assert not by_file["checkpoint-0000000009.json"]["ok"]


def test_verify_checks_the_manifest_fingerprint(tmp_path):
    from repro.service.snapshot import config_fingerprint
    from repro.service.wal import write_manifest

    _filled_wal(tmp_path)
    config = {"algorithm": "first-fit", "capacity": 1.0, "kind": "scalar"}
    write_manifest(str(tmp_path), {
        "version": 1, "shard_id": 0, "num_shards": 1,
        "engine": config, "fingerprint": config_fingerprint(config),
    })
    report = verify_wal_dir(str(tmp_path))
    assert report["ok"], report["errors"]
    assert report["manifest"]["fingerprint_ok"] is True

    write_manifest(str(tmp_path), {
        "version": 1, "shard_id": 0, "num_shards": 1,
        "engine": config, "fingerprint": "deadbeefdeadbeef",
    })
    report = verify_wal_dir(str(tmp_path))
    assert not report["ok"]
    assert report["manifest"]["fingerprint_ok"] is False
    assert any("fingerprint" in e for e in report["errors"])


def test_wal_verify_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main as cli_main

    _filled_wal(tmp_path)
    assert cli_main(["wal", "verify", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out

    assert cli_main(["wal", "verify", str(tmp_path), "--json", "-"]) == 0
    import json as jsonlib

    doc = jsonlib.loads(capsys.readouterr().out)
    assert doc["ok"] and doc["records"] == 12

    seg = wal_segments(str(tmp_path))[0]
    data = bytearray(open(seg, "rb").read())
    data[10] ^= 0xFF
    with open(seg, "wb") as f:
        f.write(data)
    assert cli_main(["wal", "verify", str(tmp_path)]) == 1
    assert "problem" in capsys.readouterr().out
