"""Trace replay through the load generator, end to end.

Library-level (converted Azure trace → ``run_loadgen(departs=True)`` on
an ephemeral-port service) and CLI-level (``repro trace generate`` →
``repro serve``/``repro loadgen --trace … --trace-schema azure
--departs``, the replay recipe the docs show).  The core assertions:
zero client errors, every submit matched by its depart, and the
per-tenant table counting the two separately.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from repro.cli import main
from repro.service import build_engine, run_loadgen
from repro.traces import generate_azure_trace, load_items, normalize_items

from .test_server_loadgen import serve_and_drive


def converted_azure(tmp_path, n=120, seed=6):
    raw = tmp_path / "az.csv"
    generate_azure_trace(raw, n, seed=seed)
    items, _ = load_items(raw, schema="azure")
    items, _ = normalize_items(items)
    return items


class TestLibraryReplay:
    def test_departs_replayed_and_counted(self, tmp_path):
        items = converted_azure(tmp_path)
        engine = build_engine(algorithm="first-fit", capacity=items.capacity)

        async def scenario():
            return await serve_and_drive(
                engine,
                lambda port: run_loadgen(
                    items, port=port, shutdown=True, departs=True, tenants=4
                ),
            )

        report, _ = asyncio.run(scenario())
        assert report.errors == 0
        assert report.jobs == len(items)
        assert report.departs == len(items)
        assert report.actions == {"placed": len(items)}
        # per-tenant table: submits and departs tracked separately,
        # and every tenant's submits eventually departed
        assert sum(r["submits"] for r in report.per_tenant.values()) == len(items)
        for row in report.per_tenant.values():
            assert row["submits"] == row["departs"]
        # explicit departs drained everything: the final drain adds no bins
        assert report.drain["bins"] > 0
        text = report.render()
        assert f"{len(items)} jobs + {len(items)} departs" in text

    def test_binary_pipelined_replay_matches_json(self, tmp_path):
        items = converted_azure(tmp_path)

        def run(protocol, **kw):
            engine = build_engine(
                algorithm="first-fit", capacity=items.capacity
            )

            async def scenario():
                return await serve_and_drive(
                    engine,
                    lambda port: run_loadgen(
                        items, port=port, shutdown=True, departs=True,
                        protocol=protocol, **kw,
                    ),
                )

            return asyncio.run(scenario())[0]

        js = run("json")
        binary = run("binary", batch=16, pipeline=4)
        assert binary.errors == js.errors == 0
        assert binary.jobs == js.jobs
        assert binary.departs == js.departs
        # both wire protocols drained to the identical packing
        assert binary.drain == js.drain


class TestCliReplay:
    def test_trace_generate_serve_loadgen(self, tmp_path, capsys):
        raw = tmp_path / "az.csv.gz"
        port_file = tmp_path / "port.txt"
        report_file = tmp_path / "replay.json"
        assert main([
            "trace", "generate", "--schema", "azure",
            "--out", str(raw), "--n", "100", "--seed", "4",
        ]) == 0
        server = threading.Thread(
            target=main,
            args=(
                ["serve", "--port", "0", "--port-file", str(port_file),
                 "--quiet"],
            ),
            daemon=True,
        )
        server.start()
        deadline = time.time() + 10
        while not port_file.exists() and time.time() < deadline:
            time.sleep(0.02)
        assert port_file.exists(), "serve never wrote its port file"
        port = port_file.read_text().strip()

        rc = main([
            "loadgen", "--port", port,
            "--trace", str(raw), "--trace-schema", "azure", "--departs",
            "--protocol", "binary", "--batch", "16", "--pipeline", "4",
            "--tenants", "4", "--shutdown", "--json", str(report_file),
        ])
        assert rc == 0
        server.join(timeout=10)
        assert not server.is_alive()
        out = capsys.readouterr().out
        assert "trace: 100 jobs" in out
        assert "100 jobs + 100 departs" in out
        payload = json.loads(report_file.read_text())
        assert payload["jobs"] == 100
        assert payload["departs"] == 100
        assert payload["errors"] == 0
        assert sum(
            r["submits"] for r in payload["per_tenant"].values()
        ) == 100
