"""The metrics registry, Prometheus text exposition, and the decision log."""

from __future__ import annotations

import io
import json

import pytest

from repro.algorithms import make_algorithm
from repro.core.items import Item
from repro.service import (
    Counter,
    DecisionLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    StreamingEngine,
)
from repro.workloads import poisson_workload


class TestPrimitives:
    def test_counter_is_monotone(self):
        c = Counter("x_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("x")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value == 4

    def test_histogram_cumulative_buckets(self):
        h = Histogram("lat", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 0.7, 3.0, 7.0, 99.0):
            h.observe(v)
        text = "\n".join(h.expose())
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="5"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text
        assert h.sum == pytest.approx(110.2)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_histogram_snapshot_roundtrip(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(9.0)
        h2 = Histogram("lat", buckets=(1.0, 2.0))
        h2.restore(h.snapshot())
        assert h2.expose() == h.expose()
        with pytest.raises(ValueError, match="buckets"):
            Histogram("lat", buckets=(1.0,)).restore(h.snapshot())


class TestRegistry:
    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a_total")

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs seen").inc(7)
        reg.gauge("open_bins", "open now").set(3)
        text = reg.expose_text()
        assert "# HELP jobs_total jobs seen" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 7" in text
        assert "# TYPE open_bins gauge" in text
        assert "open_bins 3" in text
        assert text.endswith("\n")

    def test_contains_and_as_dict(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        assert "a_total" in reg and "missing" not in reg
        d = reg.as_dict()
        assert d["a_total"] == 1.0
        assert d["h"] == {"sum": 0.5, "count": 1}


class TestEngineMetrics:
    def replay(self, n=120, rate=4.0, **kwargs):
        items = poisson_workload(n, seed=21, mu_target=8.0, arrival_rate=rate)
        engine = StreamingEngine.scalar(
            make_algorithm("first-fit"),
            capacity=items.capacity,
            metrics=MetricsRegistry(),
            **kwargs,
        )
        for it in sorted(items, key=lambda it: it.arrival):
            engine.submit(it)
        engine.finish()
        return engine

    def test_counters_balance(self):
        engine = self.replay()
        m = engine.metrics.as_dict()
        assert m["repro_service_jobs_submitted_total"] == 120
        assert m["repro_service_jobs_placed_total"] == 120
        assert m["repro_service_departures_total"] == 120
        assert (
            m["repro_service_bins_opened_total"]
            == m["repro_service_bins_closed_total"]
            == engine.state.num_bins_used
        )
        assert m["repro_service_open_bins"] == 0
        assert m["repro_service_load"] == 0
        assert m["repro_service_bin_level"]["count"] == 120

    def test_exposition_contains_service_families(self):
        engine = self.replay()
        text = engine.metrics.expose_text()
        for family in (
            "repro_service_jobs_submitted_total",
            "repro_service_open_bins",
            "repro_service_bin_level_bucket",
            "repro_service_queue_wait_count",
        ):
            assert family in text

    def test_engine_without_metrics_is_silent(self):
        items = poisson_workload(50, seed=2, mu_target=6.0, arrival_rate=3.0)
        engine = StreamingEngine.scalar(
            make_algorithm("first-fit"), capacity=items.capacity
        )
        for it in sorted(items, key=lambda it: it.arrival):
            engine.submit(it)
        engine.finish()
        assert engine.metrics is None


class TestDecisionLog:
    def test_records_and_sink(self):
        sink = io.StringIO()
        log = DecisionLog(sink=sink)
        engine = StreamingEngine.scalar(
            make_algorithm("first-fit"), decision_log=log
        )
        engine.submit(Item(1, 0.4, 0.0, 2.0))
        engine.submit(Item(2, 0.5, 1.0, 3.0))
        engine.finish()
        # submit x2 + depart x2
        assert log.total == 4
        assert [r["op"] for r in log.records] == [
            "submit", "submit", "depart", "depart",
        ]
        lines = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert len(lines) == 4
        assert lines[0]["action"] == "placed" and lines[0]["new_bin"] is True
        assert lines[2]["action"] == "departed"

    def test_in_memory_tail_is_bounded(self):
        log = DecisionLog(keep=5)
        for i in range(12):
            log.log(op="submit", item=i)
        assert log.total == 12
        assert len(log.records) == 5
        assert log.tail(2) == [{"op": "submit", "item": 10},
                               {"op": "submit", "item": 11}]
