"""The service tentpole's core guarantee: stream path ≡ batch path.

Replaying any trace through :class:`StreamingEngine.submit`/:meth:`finish`
must be **bit-identical** to the batch engines — same item→bin map, same
float-exact usage time, same bin count.  This is pinned on the frozen
corpora (the seven scalar regression traces and all twelve multidim
instances) for every registered policy, on the default adaptively
indexed path, the ``indexed=False`` reference path, and with the
first-fit tree forced on from bin one.

Jobs are submitted in arrival order (ties kept in instance order —
``sorted`` is stable), which is the only order a time-monotone stream
can deliver; the equality below proves the engine's departure-before-
arrival tie handling matches the batch driver's canonical event sort.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.core.state as state_mod
from repro.algorithms import ALGORITHM_REGISTRY, make_algorithm
from repro.core.packing import run_packing
from repro.multidim import (
    VECTOR_REGISTRY,
    VectorItem,
    VectorItemList,
    make_vector_algorithm,
    run_vector_packing,
)
from repro.service import StreamingEngine
from repro.workloads import poisson_workload
from repro.workloads.traces import load_trace

DATA = Path(__file__).parent.parent / "data"
MULTIDIM = sorted((DATA / "multidim").glob("*.json"))

with open(DATA / "expected_costs.json") as f:
    SCALAR_TRACES = sorted(json.load(f))

ALL_SCALAR = sorted(ALGORITHM_REGISTRY)
ALL_VECTOR = sorted(VECTOR_REGISTRY)


def load_vector_corpus(path):
    with open(path) as f:
        data = json.load(f)
    return VectorItemList(
        [
            VectorItem(d["item_id"], tuple(d["sizes"]), d["arrival"], d["departure"])
            for d in data["items"]
        ],
        capacity=tuple(data["capacity"]),
    )


def stream_scalar(items, algo_name, indexed):
    engine = StreamingEngine.scalar(
        make_algorithm(algo_name), capacity=items.capacity, indexed=indexed
    )
    for it in sorted(items, key=lambda it: it.arrival):
        placement = engine.submit(it)
        assert placement.action == "placed"
    return engine.finish()


def stream_vector(items, algo_name, indexed):
    engine = StreamingEngine.vector(
        make_vector_algorithm(algo_name), capacity=items.capacity, indexed=indexed
    )
    for it in sorted(items, key=lambda it: it.arrival):
        assert engine.submit(it).action == "placed"
    return engine.finish()


def assert_bit_identical(stream, batch):
    assert stream.item_bin == batch.item_bin
    assert stream.total_usage_time == batch.total_usage_time  # exact, no approx
    assert stream.num_bins == batch.num_bins
    assert stream.algorithm_name == batch.algorithm_name


@pytest.fixture
def forced_tree(monkeypatch):
    """Build and query the first-fit tree from the very first bin."""
    monkeypatch.setattr(state_mod, "INDEX_THRESHOLD", 1)


@pytest.mark.parametrize("trace_name", SCALAR_TRACES)
class TestScalarCorpus:
    @pytest.fixture(scope="class")
    def instances(self):
        return {name: load_trace(DATA / f"{name}.json") for name in SCALAR_TRACES}

    @pytest.mark.parametrize("algo_name", ALL_SCALAR)
    def test_default_path(self, trace_name, algo_name, instances):
        items = instances[trace_name]
        batch = run_packing(
            items, make_algorithm(algo_name), capacity=items.capacity
        )
        assert_bit_identical(stream_scalar(items, algo_name, True), batch)

    @pytest.mark.parametrize("algo_name", ALL_SCALAR)
    def test_reference_path(self, trace_name, algo_name, instances):
        items = instances[trace_name]
        batch = run_packing(
            items, make_algorithm(algo_name), capacity=items.capacity, indexed=False
        )
        assert_bit_identical(stream_scalar(items, algo_name, False), batch)

    @pytest.mark.parametrize("algo_name", ALL_SCALAR)
    def test_forced_tree(self, trace_name, algo_name, instances, forced_tree):
        items = instances[trace_name]
        batch = run_packing(
            items, make_algorithm(algo_name), capacity=items.capacity
        )
        assert_bit_identical(stream_scalar(items, algo_name, True), batch)


@pytest.mark.parametrize("trace", MULTIDIM, ids=lambda p: p.stem)
class TestVectorCorpus:
    @pytest.mark.parametrize("algo_name", ALL_VECTOR)
    def test_default_path(self, trace, algo_name):
        items = load_vector_corpus(trace)
        batch = run_vector_packing(items, make_vector_algorithm(algo_name))
        assert_bit_identical(stream_vector(items, algo_name, True), batch)

    @pytest.mark.parametrize("algo_name", ALL_VECTOR)
    def test_reference_path(self, trace, algo_name):
        items = load_vector_corpus(trace)
        batch = run_vector_packing(
            items, make_vector_algorithm(algo_name), indexed=False
        )
        assert_bit_identical(stream_vector(items, algo_name, False), batch)

    @pytest.mark.parametrize("algo_name", ALL_VECTOR)
    def test_forced_tree(self, trace, algo_name, forced_tree):
        items = load_vector_corpus(trace)
        batch = run_vector_packing(items, make_vector_algorithm(algo_name))
        assert_bit_identical(stream_vector(items, algo_name, True), batch)


class TestHighLoadActivation:
    """The tree activates *mid-stream* and the identity still holds."""

    @pytest.mark.parametrize("algo_name", ALL_SCALAR)
    def test_scalar_tree_activates_mid_stream(self, algo_name):
        # a few hundred concurrently open bins crosses INDEX_THRESHOLD
        items = poisson_workload(800, seed=23, mu_target=8.0, arrival_rate=300.0)
        batch = run_packing(items, make_algorithm(algo_name), capacity=items.capacity)
        assert_bit_identical(stream_scalar(items, algo_name, True), batch)


class TestPushApiShapes:
    """Light structural checks on the push API itself."""

    def test_out_of_order_arrival_rejected(self):
        from repro.core.items import Item

        engine = StreamingEngine.scalar(make_algorithm("first-fit"))
        engine.submit(Item(1, 0.3, 5.0, 9.0))
        with pytest.raises(ValueError, match="time-ordered"):
            engine.submit(Item(2, 0.3, 4.0, 9.0))

    def test_explicit_departure_path(self):
        from repro.core.items import Item

        engine = StreamingEngine.scalar(make_algorithm("first-fit"))
        engine.submit(Item(1, 0.4, 0.0, 10.0), schedule_departure=False)
        engine.submit(Item(2, 0.4, 1.0, 4.0), schedule_departure=False)
        assert engine.state.num_open == 1
        engine.depart(2, now=4.0)
        engine.depart(1)  # defaults to the recorded departure time
        result = engine.finish()
        assert result.num_bins == 1
        assert engine.state.num_open == 0

    def test_depart_unknown_item_raises(self):
        engine = StreamingEngine.scalar(make_algorithm("first-fit"))
        with pytest.raises(KeyError):
            engine.depart(42)

    def test_advance_applies_scheduled_departures(self):
        from repro.core.items import Item

        engine = StreamingEngine.scalar(make_algorithm("first-fit"))
        engine.submit(Item(1, 0.4, 0.0, 2.0))
        engine.submit(Item(2, 0.4, 1.0, 3.0))
        assert engine.advance(2.5) == 1
        assert engine.clock == 2.5
        assert engine.advance(10.0) == 1
        with pytest.raises(ValueError):
            engine.advance(5.0)  # the clock never moves backwards
