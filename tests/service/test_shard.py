"""Shard-scoped contexts and WAL-directory identity (the MANIFEST).

The fleet refactor's contract: every service process — standalone or
one worker of N — boots through :meth:`ShardContext.create`, and a WAL
directory can only ever be replayed by the shard/config that wrote it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.items import Item
from repro.service import (
    ShardContext,
    ShardSpec,
    WalError,
    build_engine,
    config_fingerprint,
    read_manifest,
    recover,
    shard_manifest,
    write_manifest,
)
from repro.service.wal import MANIFEST_NAME


def job(i, size=0.3, arrival=0.0, departure=10.0):
    return Item(item_id=i, size=size, arrival=arrival, departure=departure)


# -- specs and manifests ------------------------------------------------------
def test_shard_spec_validates():
    assert ShardSpec() == ShardSpec(0, 1)
    ShardSpec(3, 4)
    with pytest.raises(ValueError):
        ShardSpec(0, 0)
    with pytest.raises(ValueError):
        ShardSpec(4, 4)
    with pytest.raises(ValueError):
        ShardSpec(-1, 2)


def test_engine_config_is_canonical():
    config = build_engine().config()
    assert config == {
        "kind": "scalar",
        "algorithm": "first-fit",
        "capacity": 1.0,
        "indexed": True,
        "admission": "admit-all",
    }
    # same config -> same fingerprint, regardless of dict insertion order
    shuffled = dict(reversed(list(config.items())))
    assert config_fingerprint(config) == config_fingerprint(shuffled)
    other = build_engine(algorithm="best-fit").config()
    assert config_fingerprint(other) != config_fingerprint(config)


def test_shard_manifest_shape():
    config = build_engine().config()
    doc = shard_manifest(ShardSpec(2, 8), config)
    assert doc["shard_id"] == 2
    assert doc["num_shards"] == 8
    assert doc["engine"] == config
    assert doc["fingerprint"] == config_fingerprint(config)


def test_manifest_roundtrip(tmp_path):
    directory = str(tmp_path / "wal")
    assert read_manifest(directory) is None  # no dir yet, no error
    write_manifest(directory, {"a": 1})
    assert read_manifest(directory) == {"a": 1}
    write_manifest(directory, {"a": 2})  # atomic overwrite
    assert read_manifest(directory) == {"a": 2}
    with open(os.path.join(directory, MANIFEST_NAME), "w") as f:
        f.write("not json{")
    with pytest.raises(WalError):
        read_manifest(directory)


# -- boot paths ---------------------------------------------------------------
def test_create_without_wal_dir_is_a_plain_engine():
    context = ShardContext.create()
    assert not context.durable
    assert context.wal_dir is None
    assert context.recovery_report is None
    placement = context.engine.submit(job(1))
    assert placement.action == "placed"
    assert context.metrics is not None
    context.close()


def test_create_with_wal_dir_writes_manifest_and_recovers(tmp_path):
    wal_dir = str(tmp_path / "shard")
    spec = ShardSpec(1, 4)
    context = ShardContext.create(spec, wal_dir=wal_dir, fsync="never")
    assert context.durable
    assert context.recovery_report is not None
    context.engine.submit(job(1))
    context.close()
    manifest = read_manifest(wal_dir)
    assert manifest["shard_id"] == 1 and manifest["num_shards"] == 4
    # reboot with the same identity: recovers the placed job
    again = ShardContext.create(spec, wal_dir=wal_dir, fsync="never")
    assert again.engine.stats()["placed"] == 1
    again.close()


@pytest.mark.parametrize(
    "kwargs,needle",
    [
        ({"spec": ShardSpec(0, 4)}, "shard_id"),
        ({"spec": ShardSpec(1, 2)}, "num_shards"),
        ({"spec": ShardSpec(1, 4), "algorithm": "best-fit"}, "fingerprint"),
        ({"spec": ShardSpec(1, 4), "capacity": 2.0}, "fingerprint"),
    ],
    ids=["shard-id", "shard-count", "algorithm", "capacity"],
)
def test_mismatched_identity_is_refused(tmp_path, kwargs, needle):
    wal_dir = str(tmp_path / "shard")
    ShardContext.create(ShardSpec(1, 4), wal_dir=wal_dir, fsync="never").close()
    kwargs = dict(kwargs)
    spec = kwargs.pop("spec")
    with pytest.raises(ValueError) as err:
        ShardContext.create(spec, wal_dir=wal_dir, fsync="never", **kwargs)
    assert needle in str(err.value)
    assert "refusing" in str(err.value)


def test_recover_without_manifest_keeps_prefleet_behaviour(tmp_path):
    """``recover()`` callers that predate the fleet see no MANIFEST."""
    wal_dir = str(tmp_path / "wal")
    engine, _ = recover(wal_dir, engine_builder=build_engine, fsync="never")
    engine.submit(job(1))
    engine.close()
    assert MANIFEST_NAME not in os.listdir(wal_dir)
    # and a later manifest-aware boot adopts the directory (first write)
    context = ShardContext.create(wal_dir=wal_dir, fsync="never")
    assert context.engine.stats()["placed"] == 1
    context.close()
    assert read_manifest(wal_dir) is not None


def test_manifest_stays_out_of_the_durable_byte_stream(tmp_path):
    """Same traffic, with and without a manifest: same WAL/checkpoint bytes."""
    def run(wal_dir, manifest):
        if manifest:
            context = ShardContext.create(
                ShardSpec(0, 2), wal_dir=wal_dir, fsync="never"
            )
            engine = context.engine
        else:
            engine, _ = recover(
                wal_dir, engine_builder=build_engine, fsync="never"
            )
        for i in range(20):
            engine.submit(job(i, arrival=float(i), departure=float(i) + 5.0))
        engine.checkpoint_now()
        engine.close()

    run(str(tmp_path / "a"), manifest=True)
    run(str(tmp_path / "b"), manifest=False)
    names_a = sorted(
        n for n in os.listdir(tmp_path / "a") if n != MANIFEST_NAME
    )
    names_b = sorted(os.listdir(tmp_path / "b"))
    assert names_a == names_b and names_a
    for name in names_a:
        with open(tmp_path / "a" / name, "rb") as f:
            blob_a = f.read()
        with open(tmp_path / "b" / name, "rb") as f:
            blob_b = f.read()
        assert blob_a == blob_b, name


def test_stats_carry_shard_identity_only_when_asked():
    from repro.service import AllocationService

    plain = AllocationService(build_engine())
    assert "shard" not in plain._dispatch({"op": "stats"})["stats"]
    sharded = AllocationService(build_engine(), shard=ShardSpec(2, 4))
    assert sharded._dispatch({"op": "stats"})["stats"]["shard"] == {
        "id": 2, "of": 4,
    }
