"""End-to-end: the asyncio JSON-lines server and the load generator.

Two layers: library-level (AllocationService + run_loadgen on one event
loop, ephemeral port) and CLI-level (``repro serve`` in a thread with
``--port 0 --port-file``, ``repro loadgen --shutdown`` through
``main()`` — the exact loopback recipe the README documents).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.algorithms import make_algorithm
from repro.cli import main
from repro.core.packing import run_packing
from repro.service import (
    AllocationService,
    LoadgenReport,
    build_engine,
    make_admission_policy,
    run_loadgen,
)
from repro.workloads import poisson_workload


async def serve_and_drive(engine, client_coro_factory):
    """Start a service on an ephemeral port, run the client against it."""
    service = AllocationService(engine, quiet=True)
    port = await service.start("127.0.0.1", 0)
    waiter = asyncio.ensure_future(service.wait_closed())
    try:
        return await client_coro_factory(port), service
    finally:
        await waiter


class TestLoopbackLibrary:
    def test_loadgen_replay_matches_batch(self):
        items = poisson_workload(150, seed=9, mu_target=8.0, arrival_rate=4.0)
        engine = build_engine(algorithm="first-fit", capacity=items.capacity)

        async def scenario():
            return await serve_and_drive(
                engine,
                lambda port: run_loadgen(items, port=port, shutdown=True),
            )

        report, service = asyncio.run(scenario())
        assert isinstance(report, LoadgenReport)
        assert report.jobs == 150
        assert report.errors == 0
        assert report.actions == {"placed": 150}
        assert report.requests_per_sec > 0
        assert len(report.latencies_ms) == 150
        # the drained packing equals the batch run on the same instance
        batch = run_packing(
            items, make_algorithm("first-fit"), capacity=items.capacity
        )
        assert report.drain["bins"] == batch.num_bins
        assert report.drain["total_usage_time"] == batch.total_usage_time
        assert service.requests_served == 150 + 2  # + drain + shutdown

    def test_protocol_ops(self):
        engine = build_engine(
            admission=make_admission_policy("reject", max_open=1)
        )

        async def scenario():
            async def client(port):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)

                async def call(payload):
                    writer.write((json.dumps(payload) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                out = {}
                out["ping"] = await call({"op": "ping"})
                out["sub1"] = await call({"op": "submit", "job": {
                    "id": 1, "size": 0.9, "arrival": 0.0, "departure": 5.0}})
                out["sub2"] = await call({"op": "submit", "job": {
                    "id": 2, "size": 0.9, "arrival": 1.0, "departure": 6.0}})
                out["stats"] = await call({"op": "stats"})
                out["advance"] = await call({"op": "advance", "now": 5.5})
                out["metrics"] = await call({"op": "metrics"})
                out["checkpoint"] = await call({"op": "checkpoint"})
                out["bad_op"] = await call({"op": "frobnicate"})
                out["bad_json"] = None
                writer.write(b"{not json\n")
                await writer.drain()
                out["bad_json"] = json.loads(await reader.readline())
                out["drain"] = await call({"op": "drain"})
                await call({"op": "shutdown"})
                writer.close()
                return out

            return await serve_and_drive(engine, client)

        out, _ = asyncio.run(scenario())
        assert out["ping"] == {"ok": True, "pong": True}
        assert out["sub1"]["placement"]["action"] == "placed"
        assert out["sub2"]["placement"]["action"] == "rejected"
        assert out["stats"]["stats"]["open_bins"] == 1
        assert out["stats"]["stats"]["admission"]["reject"] == 1
        assert out["advance"]["departed"] == 1
        assert "repro_service_jobs_submitted_total 2" in out["metrics"]["text"]
        assert out["checkpoint"]["snapshot"]["kind"] == "scalar"
        assert out["bad_op"]["ok"] is False
        assert out["bad_json"]["ok"] is False
        assert out["drain"]["ok"] is True

    def test_checkpoint_to_file(self, tmp_path):
        engine = build_engine()
        target = str(tmp_path / "ckpt.json")

        async def scenario():
            async def client(port):
                reader, writer = await asyncio.open_connection("127.0.0.1", port)

                async def call(payload):
                    writer.write((json.dumps(payload) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                await call({"op": "submit", "job": {
                    "id": 7, "size": 0.5, "arrival": 0.0, "departure": 3.0}})
                response = await call({"op": "checkpoint", "path": target})
                await call({"op": "shutdown"})
                writer.close()
                return response

            return await serve_and_drive(engine, client)

        response, _ = asyncio.run(scenario())
        assert response == {"ok": True, "path": target}
        with open(target) as f:
            doc = json.load(f)
        assert doc["placed_order"] == [7]


class TestLoopbackCli:
    def test_serve_and_loadgen_commands(self, tmp_path, capsys):
        """The README quickstart, end to end through ``main()``."""
        port_file = tmp_path / "port.txt"
        log_file = tmp_path / "decisions.jsonl"
        report_file = tmp_path / "loadgen.json"
        server = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--port", "0",
                    "--port-file", str(port_file),
                    "--quiet",
                    "--admission", "reject", "--max-open", "200",
                    "--log", str(log_file),
                ],
            ),
            daemon=True,
        )
        server.start()
        deadline = time.time() + 10
        while not port_file.exists() and time.time() < deadline:
            time.sleep(0.02)
        assert port_file.exists(), "serve never wrote its port file"
        port = port_file.read_text().strip()

        rc = main([
            "loadgen", "--port", port, "--n", "80", "--seed", "3",
            "--shutdown", "--json", str(report_file),
        ])
        assert rc == 0
        server.join(timeout=10)
        assert not server.is_alive()
        out = capsys.readouterr().out
        assert "80 jobs" in out
        assert "placed=80" in out
        payload = json.loads(report_file.read_text())
        assert payload["jobs"] == 80
        assert payload["errors"] == 0
        assert payload["drain"]["bins"] > 0
        # the decision log recorded every submit and every departure
        records = [json.loads(l) for l in log_file.read_text().splitlines()]
        assert sum(1 for r in records if r["op"] == "submit") == 80
        assert sum(1 for r in records if r["op"] == "depart") == 80

    def test_loadgen_against_dead_port_fails_cleanly(self, capsys):
        rc = main(["loadgen", "--port", "1", "--n", "5"])
        assert rc == 1
        assert "cannot reach the service" in capsys.readouterr().err

    def test_serve_rejects_inconsistent_admission_flags(self, capsys):
        rc = main(["serve", "--admission", "shed"])
        assert rc == 2
        assert "--max-load" in capsys.readouterr().err

    def test_port_validation(self):
        with pytest.raises(SystemExit):
            main(["serve", "--port", "70000"])
        with pytest.raises(SystemExit):
            main(["loadgen", "--port", "-1"])


class TestReportAndBinaryCli:
    def test_report_percentiles_render_and_json(self):
        report = LoadgenReport(
            jobs=100,
            actions={"placed": 100},
            wall_seconds=2.0,
            latencies_ms=[float(i + 1) for i in range(100)],
        )
        assert report.latency_percentile(50) == 51.0
        assert report.latency_percentile(95) == 96.0
        text = report.render()
        assert "p50=51.000" in text
        assert "p95=96.000" in text
        assert "p99=100.000" in text
        payload = report.to_json()
        assert payload["latency_ms"] == {
            "p50": 51.0, "p90": 91.0, "p95": 96.0, "p99": 100.0,
        }

    def test_request_latency_histogram_on_metrics_endpoint(self):
        """Per-request latency is service-owned — observed on both wire
        protocols, exposed on the metrics op, and absent from the engine
        registry (which checkpoints and must stay protocol-independent)."""
        items = poisson_workload(30, seed=5, mu_target=8.0, arrival_rate=4.0)
        engine = build_engine(algorithm="first-fit", capacity=items.capacity)

        async def scenario():
            return await serve_and_drive(
                engine,
                lambda port: run_loadgen(
                    items, port=port, shutdown=True,
                    protocol="binary", batch=8, pipeline=2,
                ),
            )

        report, service = asyncio.run(scenario())
        assert report.errors == 0
        text = service.service_metrics.expose_text()
        assert "repro_service_request_latency_seconds_count" in text
        assert "repro_service_request_latency_seconds_bucket" in text
        assert "repro_service_request_latency_seconds" not in (
            engine.metrics.expose_text()
        )

    def test_pipeline_requires_binary_protocol(self, capsys):
        rc = main(["loadgen", "--port", "1", "--n", "5", "--pipeline", "4"])
        assert rc == 2
        assert "binary" in capsys.readouterr().err

    def test_uvloop_flag_warns_and_falls_back_when_missing(self, capsys):
        """--uvloop must never be fatal: absent uvloop -> warn + stock loop."""
        from repro.cli import _maybe_uvloop

        try:
            import uvloop  # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("uvloop is installed in this environment")
        assert _maybe_uvloop(False) is False
        assert capsys.readouterr().err == ""
        assert _maybe_uvloop(True) is False
        err = capsys.readouterr().err
        assert "uvloop" in err and "not installed" in err

    def test_serve_and_loadgen_binary_pipelined_cli(self, tmp_path, capsys):
        port_file = tmp_path / "port.txt"
        report_file = tmp_path / "loadgen.json"
        server = threading.Thread(
            target=main,
            args=(
                ["serve", "--port", "0", "--port-file", str(port_file),
                 "--quiet"],
            ),
            daemon=True,
        )
        server.start()
        deadline = time.time() + 10
        while not port_file.exists() and time.time() < deadline:
            time.sleep(0.02)
        assert port_file.exists(), "serve never wrote its port file"
        port = port_file.read_text().strip()

        rc = main([
            "loadgen", "--port", port, "--n", "80", "--seed", "3",
            "--protocol", "binary", "--batch", "16", "--pipeline", "4",
            "--shutdown", "--json", str(report_file),
        ])
        assert rc == 0
        server.join(timeout=10)
        assert not server.is_alive()
        out = capsys.readouterr().out
        assert "80 jobs" in out
        assert "placed=80" in out
        assert "p95=" in out
        payload = json.loads(report_file.read_text())
        assert payload["jobs"] == 80
        assert payload["errors"] == 0
        assert payload["actions"] == {"placed": 80}
        assert payload["drain"]["bins"] > 0
