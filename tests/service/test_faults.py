"""Fault injection: plan validation (tier-1) and chaos scenarios.

The unmarked tests pin the :class:`FaultPlan`/:class:`FaultInjector`
contract — validation, determinism, kill semantics — and run in the
tier-1 suite.  The ``chaos``-marked tests drive the full stack through
seeded storms (random WAL I/O errors, dropped replies under a retrying
load generator) and assert the durability and exactly-once guarantees
hold; they run as their own CI step (``pytest -m chaos``).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.algorithms import make_algorithm
from repro.cli import main
from repro.service import (
    AllocationService,
    DurableEngine,
    FaultInjector,
    FaultPlan,
    KillPoint,
    MetricsRegistry,
    RetryPolicy,
    StreamingEngine,
    WriteAheadLog,
    recover,
    run_loadgen,
)
from repro.workloads import poisson_workload


# -- plan contract (tier-1) ---------------------------------------------------
def test_plan_validation():
    with pytest.raises(ValueError, match="io_error_rate"):
        FaultPlan(io_error_rate=1.5)
    with pytest.raises(ValueError, match="drop_rate"):
        FaultPlan(drop_rate=-0.1)
    with pytest.raises(ValueError, match="clock_skew"):
        FaultPlan(clock_skew=-1.0)
    with pytest.raises(ValueError, match="delay_ms"):
        FaultPlan(delay_ms=-5.0)
    with pytest.raises(ValueError, match="kill"):
        FaultPlan(kill={"wal.write": 0})
    with pytest.raises(ValueError, match="unknown fault-plan fields"):
        FaultPlan.from_dict({"seed": 1, "explosions": True})


def test_plan_from_file_roundtrip(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({
        "seed": 7, "kill": {"applied": 3, "reply": 9}, "torn_tail": True,
        "torn_reply": True, "io_error_rate": 0.25, "drop_rate": 0.1,
    }))
    plan = FaultPlan.from_file(str(path))
    assert plan.seed == 7
    assert plan.kill == {"applied": 3, "reply": 9}
    assert plan.torn_tail is True
    assert plan.torn_reply is True
    assert plan.io_error_rate == 0.25
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        FaultPlan.from_file(str(bad))


def test_kill_point_fires_at_exact_hit_and_is_uncatchable_as_exception():
    injector = FaultInjector(FaultPlan(kill={"applied": 3}))
    injector.point("applied")
    injector.point("applied")
    with pytest.raises(KillPoint):
        injector.point("applied")
    assert injector.kills == 1
    # BaseException on purpose: a bare `except Exception` must not
    # swallow an injected crash
    assert not issubclass(KillPoint, Exception)


def test_injected_kill_tears_the_whole_service_down(tmp_path):
    """A kill inside a connection handler stops the server itself.

    The KillPoint fires in a per-connection asyncio task; left alone,
    the event loop would log it as an unhandled task exception and keep
    serving.  The service must escalate it out of ``wait_closed`` so
    the process dies at the kill point, exactly like ``kill -9``.
    """
    injector = FaultInjector(FaultPlan(kill={"wal.write": 2}))
    engine = DurableEngine(
        StreamingEngine.scalar(make_algorithm("first-fit")),
        WriteAheadLog(str(tmp_path), fsync="never"),
        injector=injector,
    )
    jobs = [
        {"id": 1, "size": 0.5, "arrival": 0.0, "departure": 1.0},
        {"id": 2, "size": 0.4, "arrival": 0.5, "departure": 1.5},
    ]

    async def scenario():
        service = AllocationService(engine, quiet=True, injector=injector)
        port = await service.start("127.0.0.1", 0)
        waiter = asyncio.ensure_future(service.wait_closed())
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        replies = []
        for i, job in enumerate(jobs):
            writer.write((json.dumps(
                {"op": "submit", "request_id": f"k-{i}", "job": job}
            ) + "\n").encode())
            await writer.drain()
            replies.append(await reader.readline())
        first = json.loads(replies[0])
        assert first["ok"] and first["placement"]["action"] == "placed"
        # the killed handler closed the connection without replying
        assert replies[1] == b""
        writer.close()
        await waiter  # re-raises the KillPoint

    with pytest.raises(KillPoint, match="wal.write"):
        asyncio.run(scenario())
    engine.wal.close()  # the "dead" process's fd

    # the kill landed before record 2 was written: recovery sees one job
    recovered, _ = recover(
        str(tmp_path),
        engine_builder=lambda: StreamingEngine.scalar(make_algorithm("first-fit")),
        fsync="never",
    )
    assert recovered.stats()["placed"] == 1
    recovered.close()


def test_injector_is_deterministic_per_seed():
    plan = FaultPlan(seed=42, drop_rate=0.3, delay_ms=4.0, clock_skew=0.5)
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    assert [a.reply_fate() for _ in range(50)] == [b.reply_fate() for _ in range(50)]
    assert [a.skew(1.0) for _ in range(20)] == [b.skew(1.0) for _ in range(20)]


def test_serve_rejects_unreadable_fault_plan(tmp_path, capsys):
    rc = main(["serve", "--fault-plan", str(tmp_path / "missing.json")])
    assert rc == 2
    assert "fault plan" in capsys.readouterr().err


# -- chaos scenarios ----------------------------------------------------------
@pytest.mark.chaos
def test_wal_io_error_storm_refuses_cleanly_and_recovers_consistently(tmp_path):
    """Random injected write errors refuse ops; recovery matches exactly.

    Every submit the WAL refused must be absent from the recovered
    state, every acknowledged one present — the recovered engine equals
    a clean engine fed only the acknowledged jobs.
    """
    items = poisson_workload(120, seed=23, mu_target=8.0, arrival_rate=4.0)
    ordered = sorted(items, key=lambda it: it.arrival)
    injector = FaultInjector(FaultPlan(seed=11, io_error_rate=0.3))
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=items.capacity
    )
    wal = WriteAheadLog(str(tmp_path), fsync="never")
    durable = DurableEngine(make_engine(), wal, injector=injector)
    accepted = []
    for i, it in enumerate(ordered):
        try:
            durable.submit(it, request_id=f"op-{i}")
        except OSError:
            continue
        accepted.append(it)
    wal.close()  # crash here: no drain, no final checkpoint
    assert injector.injected_io_errors > 0, "the storm must actually hit"
    assert 0 < len(accepted) < len(ordered)

    recovered, report = recover(
        str(tmp_path), engine_builder=make_engine, fsync="never"
    )
    assert report.dedup_entries == len(accepted)
    clean = make_engine()
    for it in accepted:
        clean.submit(it)
    a, b = recovered.finish(), clean.finish()
    assert a.item_bin == b.item_bin
    assert a.total_usage_time == b.total_usage_time
    recovered.close()


@pytest.mark.chaos
def test_loadgen_exactly_once_under_dropped_replies(tmp_path):
    """Dropped replies + client retries = every job placed exactly once."""
    items = poisson_workload(80, seed=31, mu_target=8.0, arrival_rate=4.0)
    injector = FaultInjector(FaultPlan(seed=13, drop_rate=0.15))
    engine = DurableEngine(
        StreamingEngine.scalar(
            make_algorithm("first-fit"),
            capacity=items.capacity,
            metrics=MetricsRegistry(),
        ),
        WriteAheadLog(str(tmp_path), fsync="never"),
    )

    async def scenario():
        service = AllocationService(engine, quiet=True, injector=injector)
        port = await service.start("127.0.0.1", 0)
        try:
            return await run_loadgen(
                items,
                port=port,
                retry=RetryPolicy(retries=8, base=0.002, seed=5),
            )
        finally:
            service._shutdown.set()
            await service.wait_closed()

    report = asyncio.run(scenario())
    assert report.errors == 0
    assert report.actions == {"placed": len(items)}
    assert report.retries > 0, "the storm must actually drop replies"
    # exactly-once server-side: retries were absorbed by the dedup
    # window, the engine placed each job a single time
    stats = engine.stats()
    assert stats["placed"] == len(items)
    dup = engine.metrics.get("repro_service_duplicate_requests_total").value
    assert dup >= 1
    engine.close()


@pytest.mark.chaos
def test_clock_skew_still_yields_a_consistent_packing(tmp_path):
    """Skewed client clocks may reorder arrivals; the service stays sane.

    Out-of-order submits are refused (the engine validates before
    mutating), accepted ones pack normally — the invariant is zero
    crashes and a drainable final state, not a particular packing.
    """
    items = poisson_workload(60, seed=37, mu_target=6.0, arrival_rate=2.0)
    injector = FaultInjector(FaultPlan(seed=3, clock_skew=0.4))
    engine = StreamingEngine.scalar(
        make_algorithm("first-fit"),
        capacity=items.capacity,
        metrics=MetricsRegistry(),
    )

    async def scenario():
        service = AllocationService(engine, quiet=True, injector=injector)
        port = await service.start("127.0.0.1", 0)
        try:
            return await run_loadgen(items, port=port)
        finally:
            service._shutdown.set()
            await service.wait_closed()

    report = asyncio.run(scenario())
    placed = report.actions.get("placed", 0)
    assert placed + report.errors == len(items)
    assert placed > 0
    assert report.drain["bins"] > 0


@pytest.mark.chaos
def test_binary_torn_reply_kill_recovers_the_unacknowledged_submit(tmp_path):
    """The server dies writing half a binary reply; the WAL tells the truth.

    A ``reply`` kill with ``torn_reply`` lands after the submit was
    WAL-appended and applied but while its acknowledgement frame is on
    the wire — the worst crash window the binary protocol has.  The
    client must observe a torn frame (not a clean close), and recovery
    must contain every *acknowledged* submit plus the one in flight,
    with its request id in the dedup window so a client retry after
    restart stays exactly-once.
    """
    from repro.service import protocol as wire

    items = poisson_workload(40, seed=41, mu_target=8.0, arrival_rate=4.0)
    ordered = sorted(items, key=lambda it: it.arrival)
    injector = FaultInjector(FaultPlan(kill={"reply": 12}, torn_reply=True))
    make_engine = lambda: StreamingEngine.scalar(
        make_algorithm("first-fit"), capacity=items.capacity
    )
    engine = DurableEngine(
        make_engine(),
        WriteAheadLog(str(tmp_path), fsync="never"),
        injector=injector,
    )
    seen = {"acked": 0, "torn_bytes": -1}

    async def scenario():
        service = AllocationService(engine, quiet=True, injector=injector)
        port = await service.start("127.0.0.1", 0)
        waiter = asyncio.ensure_future(service.wait_closed())
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(wire.hello_line())
        await writer.drain()
        ack = json.loads(await reader.readline())
        assert ack["ok"] and ack["protocol"] == "binary"
        for i, it in enumerate(ordered):
            writer.write(wire.frame(wire.encode_submit(it, request_id=f"t-{i}")))
            await writer.drain()
            try:
                head = await reader.readexactly(wire.HEADER.size)
                (length,) = wire.HEADER.unpack(head)
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                seen["torn_bytes"] = len(exc.partial)
                break
            doc = wire.decode_response(memoryview(payload))
            assert doc["ok"] is True, doc
            seen["acked"] += 1
        else:
            raise AssertionError("the kill never fired")
        writer.close()
        await waiter  # re-raises the KillPoint

    with pytest.raises(KillPoint, match="torn frame"):
        asyncio.run(scenario())
    engine.wal.close()  # the "dead" process's fd
    assert seen["acked"] > 0
    # a *torn* frame: some — but not all — of the reply bytes arrived
    assert seen["torn_bytes"] > 0

    recovered, report = recover(
        str(tmp_path), engine_builder=make_engine, fsync="never"
    )
    applied = seen["acked"] + 1  # the unacknowledged submit was logged
    assert recovered.stats()["placed"] == applied
    assert report.dedup_entries == applied
    # the in-flight request id survived: a restarted client's retry of
    # the lost reply is answered from the dedup window, not re-placed
    retry = recovered.submit(ordered[applied - 1], request_id=f"t-{applied - 1}")
    assert recovered.stats()["placed"] == applied
    clean = make_engine()
    for it in ordered[:applied]:
        clean.submit(it)
    a, b = recovered.finish(), clean.finish()
    assert a.item_bin == b.item_bin
    assert a.total_usage_time == b.total_usage_time
    recovered.close()
