"""Tests for the distribution objects."""

import numpy as np
import pytest

from repro.workloads.distributions import (
    Clipped,
    Constant,
    DiscreteChoice,
    Exponential,
    LogNormal,
    Pareto,
    Uniform,
)


def rng():
    return np.random.default_rng(7)


class TestBasicDistributions:
    def test_constant(self):
        assert list(Constant(2.5).sample(rng(), 3)) == [2.5] * 3
        assert Constant(2.5).mean == 2.5

    def test_uniform_range_and_mean(self):
        d = Uniform(1.0, 3.0)
        xs = d.sample(rng(), 5000)
        assert xs.min() >= 1.0 and xs.max() <= 3.0
        assert xs.mean() == pytest.approx(2.0, abs=0.05)
        assert d.mean == 2.0

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 1.0)

    def test_exponential_mean(self):
        d = Exponential(4.0)
        assert d.sample(rng(), 20000).mean() == pytest.approx(4.0, rel=0.05)
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_pareto_support_and_mean(self):
        d = Pareto(alpha=3.0, xm=2.0)
        xs = d.sample(rng(), 20000)
        assert xs.min() >= 2.0
        assert d.mean == pytest.approx(3.0)
        assert xs.mean() == pytest.approx(3.0, rel=0.1)

    def test_pareto_infinite_mean(self):
        assert Pareto(alpha=0.9, xm=1.0).mean == float("inf")

    def test_lognormal_mean(self):
        d = LogNormal(0.0, 0.5)
        assert d.sample(rng(), 40000).mean() == pytest.approx(d.mean, rel=0.05)


class TestDiscreteChoice:
    def test_uniform_choice(self):
        d = DiscreteChoice((1.0, 2.0, 3.0))
        xs = d.sample(rng(), 1000)
        assert set(xs) <= {1.0, 2.0, 3.0}
        assert d.mean == 2.0

    def test_weighted_choice(self):
        d = DiscreteChoice((0.0, 1.0), weights=(1.0, 3.0))
        assert d.mean == pytest.approx(0.75)
        xs = d.sample(rng(), 20000)
        assert xs.mean() == pytest.approx(0.75, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteChoice(())
        with pytest.raises(ValueError):
            DiscreteChoice((1.0,), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            DiscreteChoice((1.0, 2.0), weights=(0.0, 0.0))


class TestClipped:
    def test_respects_bounds(self):
        d = Clipped(Exponential(5.0), 1.0, 4.0)
        xs = d.sample(rng(), 5000)
        assert xs.min() >= 1.0 and xs.max() <= 4.0

    def test_mean_estimate_within_bounds(self):
        d = Clipped(Exponential(5.0), 1.0, 4.0)
        assert 1.0 <= d.mean <= 4.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Clipped(Constant(1.0), 2.0, 1.0)

    def test_deterministic_sampling(self):
        d = Uniform(0.0, 1.0)
        a = d.sample(np.random.default_rng(3), 10)
        b = d.sample(np.random.default_rng(3), 10)
        assert np.array_equal(a, b)
