"""Tests for the diurnal (non-homogeneous Poisson) generator."""

import numpy as np
import pytest

from repro.workloads.diurnal import diurnal_workload, sinusoidal_rate


class TestSinusoidalRate:
    def test_oscillates_around_base(self):
        rate = sinusoidal_rate(2.0, 0.5, period=24.0)
        assert rate(6.0) == pytest.approx(3.0)   # peak of sin at period/4
        assert rate(18.0) == pytest.approx(1.0)  # trough
        assert rate.max_rate == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sinusoidal_rate(0.0, 0.5)
        with pytest.raises(ValueError):
            sinusoidal_rate(1.0, 1.0)


class TestDiurnalWorkload:
    def test_arrivals_within_horizon(self):
        inst = diurnal_workload(48.0, seed=1)
        assert all(0 <= it.arrival < 48.0 for it in inst)

    def test_reproducible(self):
        a = diurnal_workload(24.0, seed=2)
        b = diurnal_workload(24.0, seed=2)
        assert len(a) == len(b)
        assert [it.arrival for it in a] == [it.arrival for it in b]

    def test_peak_hours_busier(self):
        """More arrivals near the peak than near the trough (statistical)."""
        rate = sinusoidal_rate(4.0, 0.9, period=24.0)
        counts_peak = counts_trough = 0
        for seed in range(10):
            inst = diurnal_workload(24.0, seed=seed, rate_fn=rate)
            counts_peak += sum(1 for it in inst if 3.0 <= it.arrival < 9.0)
            counts_trough += sum(1 for it in inst if 15.0 <= it.arrival < 21.0)
        assert counts_peak > counts_trough

    def test_mu_bounded(self):
        inst = diurnal_workload(48.0, seed=3, mu_target=6.0)
        if len(inst) > 0:
            assert inst.mu <= 6.0 + 1e-9

    def test_zero_horizon_empty(self):
        assert len(diurnal_workload(0.0, seed=1)) == 0
