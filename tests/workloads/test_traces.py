"""Tests for trace serialisation round-trips."""

import pytest

from repro.core.items import Item, ItemList
from repro.workloads.traces import (
    from_csv,
    from_json,
    load_trace,
    save_trace,
    to_csv,
    to_json,
)


def sample() -> ItemList:
    return ItemList(
        [
            Item(0, 0.5, 0.0, 2.0),
            Item(1, 1.0 / 3.0, 0.1, 7.3),
            Item(7, 0.125, 5.0, 6.0),
        ],
        capacity=1.0,
    )


def items_equal(a: ItemList, b: ItemList) -> bool:
    if a.capacity != b.capacity or len(a) != len(b):
        return False
    return all(
        (x.item_id, x.size, x.arrival, x.departure)
        == (y.item_id, y.size, y.arrival, y.departure)
        for x, y in zip(a, b)
    )


class TestJson:
    def test_roundtrip(self):
        assert items_equal(sample(), from_json(to_json(sample())))

    def test_capacity_preserved(self):
        items = ItemList([Item(0, 1.5, 0, 1)], capacity=2.0)
        assert from_json(to_json(items)).capacity == 2.0

    def test_missing_capacity_defaults(self):
        doc = '{"items": [{"id": 0, "size": 0.5, "arrival": 0, "departure": 1}]}'
        assert from_json(doc).capacity == 1.0


class TestCsv:
    def test_roundtrip_exact_floats(self):
        """repr-based CSV keeps exact float values (1/3 survives)."""
        assert items_equal(sample(), from_csv(to_csv(sample())))

    def test_capacity_comment(self):
        items = ItemList([Item(0, 1.5, 0, 1)], capacity=2.0)
        text = to_csv(items)
        assert "# capacity=2.0" in text
        assert from_csv(text).capacity == 2.0


class TestFiles:
    def test_save_load_json(self, tmp_path):
        p = tmp_path / "trace.json"
        save_trace(sample(), p)
        assert items_equal(sample(), load_trace(p))

    def test_save_load_csv(self, tmp_path):
        p = tmp_path / "trace.csv"
        save_trace(sample(), p)
        assert items_equal(sample(), load_trace(p))

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(sample(), tmp_path / "trace.parquet")
        with pytest.raises(ValueError):
            load_trace(tmp_path / "trace.parquet")
