"""Tests for trace serialisation round-trips."""

import pytest

from repro.core.items import Item, ItemList
from repro.workloads.traces import (
    TraceFormatError,
    from_csv,
    from_json,
    load_trace,
    save_trace,
    to_csv,
    to_json,
)


def sample() -> ItemList:
    return ItemList(
        [
            Item(0, 0.5, 0.0, 2.0),
            Item(1, 1.0 / 3.0, 0.1, 7.3),
            Item(7, 0.125, 5.0, 6.0),
        ],
        capacity=1.0,
    )


def items_equal(a: ItemList, b: ItemList) -> bool:
    if a.capacity != b.capacity or len(a) != len(b):
        return False
    return all(
        (x.item_id, x.size, x.arrival, x.departure)
        == (y.item_id, y.size, y.arrival, y.departure)
        for x, y in zip(a, b)
    )


class TestJson:
    def test_roundtrip(self):
        assert items_equal(sample(), from_json(to_json(sample())))

    def test_capacity_preserved(self):
        items = ItemList([Item(0, 1.5, 0, 1)], capacity=2.0)
        assert from_json(to_json(items)).capacity == 2.0

    def test_missing_capacity_defaults(self):
        doc = '{"items": [{"id": 0, "size": 0.5, "arrival": 0, "departure": 1}]}'
        assert from_json(doc).capacity == 1.0


class TestCsv:
    def test_roundtrip_exact_floats(self):
        """repr-based CSV keeps exact float values (1/3 survives)."""
        assert items_equal(sample(), from_csv(to_csv(sample())))

    def test_capacity_comment(self):
        items = ItemList([Item(0, 1.5, 0, 1)], capacity=2.0)
        text = to_csv(items)
        assert "# capacity=2.0" in text
        assert from_csv(text).capacity == 2.0


class TestFiles:
    def test_save_load_json(self, tmp_path):
        p = tmp_path / "trace.json"
        save_trace(sample(), p)
        assert items_equal(sample(), load_trace(p))

    def test_save_load_csv(self, tmp_path):
        p = tmp_path / "trace.csv"
        save_trace(sample(), p)
        assert items_equal(sample(), load_trace(p))

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(sample(), tmp_path / "trace.parquet")
        with pytest.raises(ValueError):
            load_trace(tmp_path / "trace.parquet")


class TestFormatErrors:
    """Satellite of the trace PR: parse failures name line and field."""

    def test_csv_bad_value_names_line_and_field(self):
        text = "id,size,arrival,departure\n0,0.5,0.0,2.0\n1,huge,1.0,3.0\n"
        with pytest.raises(TraceFormatError) as exc:
            from_csv(text)
        assert exc.value.line == 3
        assert exc.value.field == "size"
        assert "line 3" in str(exc.value) and "'size'" in str(exc.value)

    def test_csv_missing_column_rejected_up_front(self):
        with pytest.raises(TraceFormatError) as exc:
            from_csv("id,size,arrival\n0,0.5,0.0\n")
        assert "departure" in str(exc.value)

    def test_csv_bad_capacity_comment(self):
        with pytest.raises(TraceFormatError) as exc:
            from_csv("# capacity=lots\nid,size,arrival,departure\n")
        assert exc.value.field == "capacity"

    def test_json_malformed_document(self):
        with pytest.raises(TraceFormatError):
            from_json("{not json")
        with pytest.raises(TraceFormatError):
            from_json('{"capacity": 1.0}')

    def test_json_bad_record_names_index(self):
        doc = ('{"items": [{"id": 0, "size": 0.5, "arrival": 0, '
               '"departure": 1}, {"id": 1, "arrival": 0, "departure": 1}]}')
        with pytest.raises(TraceFormatError) as exc:
            from_json(doc)
        assert "items[1]" in str(exc.value)

    def test_load_trace_attaches_the_path(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("id,size,arrival,departure\n0,nope,0.0,1.0\n")
        with pytest.raises(TraceFormatError) as exc:
            load_trace(p)
        assert str(p) in str(exc.value)
        assert exc.value.line == 2

    def test_error_is_still_a_value_error(self):
        with pytest.raises(ValueError):
            from_csv("id,size,arrival,departure\n0,x,0.0,1.0\n")


class TestVectorAndGzip:
    def test_vector_json_roundtrip(self):
        from repro.multidim.items import VectorItem, VectorItemList

        vec = VectorItemList(
            [VectorItem(0, (0.5, 0.25), 0.0, 2.0),
             VectorItem(1, (0.25, 0.5), 1.0, 3.0)],
            capacity=(1.0, 1.0),
        )
        back = from_json(to_json(vec))
        assert isinstance(back, VectorItemList)
        assert back.capacity == (1.0, 1.0)
        assert [it.sizes for it in back] == [(0.5, 0.25), (0.25, 0.5)]

    def test_vector_csv_rejected_with_guidance(self):
        from repro.multidim.items import VectorItem, VectorItemList

        vec = VectorItemList([VectorItem(0, (0.5,), 0.0, 1.0)], capacity=(1.0,))
        with pytest.raises(TraceFormatError) as exc:
            to_csv(vec)
        assert "JSON" in str(exc.value)

    def test_gzipped_roundtrip_both_formats(self, tmp_path):
        for name in ("t.json.gz", "t.csv.gz"):
            p = tmp_path / name
            save_trace(sample(), p)
            assert p.read_bytes()[:2] == b"\x1f\x8b"  # really gzipped
            assert items_equal(sample(), load_trace(p))
