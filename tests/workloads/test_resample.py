"""Tests for trace resampling."""

import pytest

from repro.core.items import Item, ItemList
from repro.workloads.random_workloads import poisson_workload
from repro.workloads.resample import resample_trace


class TestResample:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            resample_trace(ItemList([]), seed=1)

    def test_same_size_by_default(self):
        src = poisson_workload(40, seed=1)
        out = resample_trace(src, seed=2)
        assert len(out) == 40

    def test_custom_size(self):
        src = poisson_workload(40, seed=1)
        assert len(resample_trace(src, seed=2, n=100)) == 100

    def test_reproducible(self):
        src = poisson_workload(30, seed=1)
        a = resample_trace(src, seed=5)
        b = resample_trace(src, seed=5)
        assert [(it.size, it.arrival) for it in a] == [(it.size, it.arrival) for it in b]

    def test_sizes_come_from_source(self):
        src = poisson_workload(30, seed=3)
        out = resample_trace(src, seed=4)
        source_sizes = {it.size for it in src}
        assert {it.size for it in out} <= source_sizes

    def test_mu_preserved_by_default(self):
        src = poisson_workload(50, seed=6, mu_target=4.0)
        out = resample_trace(src, seed=7, duration_jitter=1.0, preserve_mu=True)
        assert out.mu <= src.mu + 1e-6

    def test_mu_can_grow_without_preservation(self):
        src = poisson_workload(50, seed=6, mu_target=4.0)
        out = resample_trace(src, seed=7, duration_jitter=1.5, preserve_mu=False)
        # durations perturbed; µ very likely changed (either direction)
        assert out.mu != pytest.approx(src.mu)

    def test_arrival_jitter_bounded(self):
        src = poisson_workload(30, seed=8)
        out = resample_trace(src, seed=9, arrival_jitter=0.1)
        src_arrivals = sorted(it.arrival for it in src)
        for it in out:
            # every output arrival is within jitter of some source arrival
            assert any(abs(it.arrival - a) <= 0.1 + 1e-9 for a in src_arrivals) or it.arrival == 0.0
