"""Tests for the cloud-gaming workload generator."""

import pytest

from repro.workloads.distributions import LogNormal
from repro.workloads.gaming import DEFAULT_CATALOGUE, GameProfile, gaming_workload


class TestGameProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            GameProfile("bad", 0.0, LogNormal(0, 1))
        with pytest.raises(ValueError):
            GameProfile("bad", 1.5, LogNormal(0, 1))
        with pytest.raises(ValueError):
            GameProfile("bad", 0.5, LogNormal(0, 1), popularity=0)


class TestGamingWorkload:
    def test_sizes_come_from_catalogue(self):
        inst = gaming_workload(200, seed=1)
        shares = {g.gpu_share for g in DEFAULT_CATALOGUE}
        assert {it.size for it in inst} <= shares

    def test_session_bounds_cap_mu(self):
        inst = gaming_workload(300, seed=2, min_session=0.5, max_session=4.0)
        eps = 1e-9  # duration = (arrival + dur) − arrival carries an ulp
        assert all(0.5 - eps <= it.duration <= 4.0 + eps for it in inst)
        assert inst.mu <= 8.0 + 1e-6

    def test_reproducible(self):
        a = gaming_workload(50, seed=3)
        b = gaming_workload(50, seed=3)
        assert [(it.size, it.arrival) for it in a] == [(it.size, it.arrival) for it in b]

    def test_popular_titles_dominate(self):
        inst = gaming_workload(2000, seed=4)
        casual = sum(1 for it in inst if it.size == pytest.approx(0.10))
        aaa = sum(1 for it in inst if it.size == pytest.approx(1.00))
        assert casual > aaa  # popularity 4.0 vs 0.5

    def test_custom_catalogue(self):
        cat = (GameProfile("only", 0.25, LogNormal(0.0, 0.1)),)
        inst = gaming_workload(20, seed=5, catalogue=cat)
        assert all(it.size == 0.25 for it in inst)

    def test_empty_catalogue_rejected(self):
        with pytest.raises(ValueError):
            gaming_workload(10, seed=1, catalogue=())
