"""Tests for the stochastic workload generators."""

import pytest

from repro.workloads.random_workloads import RandomWorkload, batch_workload, poisson_workload


class TestPoissonWorkload:
    def test_size_and_count(self):
        inst = poisson_workload(50, seed=1)
        assert len(inst) == 50

    def test_reproducible(self):
        a = poisson_workload(30, seed=9)
        b = poisson_workload(30, seed=9)
        assert [(it.size, it.arrival, it.departure) for it in a] == [
            (it.size, it.arrival, it.departure) for it in b
        ]

    def test_different_seeds_differ(self):
        a = poisson_workload(30, seed=1)
        b = poisson_workload(30, seed=2)
        assert [it.arrival for it in a] != [it.arrival for it in b]

    def test_mu_respects_target(self):
        inst = poisson_workload(200, seed=3, mu_target=5.0)
        assert inst.mu <= 5.0 + 1e-9

    def test_durations_at_least_min(self):
        inst = poisson_workload(100, seed=4, mu_target=8.0)
        assert min(it.duration for it in inst) >= 1.0 - 1e-12

    def test_sizes_within_capacity(self):
        inst = poisson_workload(100, seed=5)
        assert all(0 < it.size <= 1.0 for it in inst)

    def test_arrivals_increasing(self):
        inst = poisson_workload(100, seed=6)
        arrivals = [it.arrival for it in inst]
        assert arrivals == sorted(arrivals)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            RandomWorkload(n=0)
        with pytest.raises(ValueError):
            RandomWorkload(n=5, arrival_rate=0.0)
        with pytest.raises(ValueError):
            RandomWorkload(n=5, mu_target=0.5)


class TestBatchWorkload:
    def test_batch_structure(self):
        inst = batch_workload(4, 5, seed=1, batch_spacing=2.0)
        assert len(inst) == 20
        arrivals = sorted({it.arrival for it in inst})
        assert arrivals == [0.0, 2.0, 4.0, 6.0]

    def test_batch_members_simultaneous(self):
        inst = batch_workload(3, 7, seed=2)
        from collections import Counter

        counts = Counter(it.arrival for it in inst)
        assert all(c == 7 for c in counts.values())

    def test_mu_bounded(self):
        inst = batch_workload(5, 10, seed=3, mu_target=4.0)
        assert inst.mu <= 4.0 + 1e-9
