"""Tests for the adversarial constructions — the paper's gadgets."""

import pytest

from repro.algorithms import ALGORITHM_REGISTRY, BestFit, FirstFit, NextFit, make_algorithm
from repro.core.packing import run_packing
from repro.opt.opt_total import opt_total
from repro.workloads.adversarial import (
    anyfit_pressure,
    best_fit_staircase,
    next_fit_lower_bound,
    universal_lower_bound,
)


class TestNextFitLowerBound:
    def test_structure(self):
        inst = next_fit_lower_bound(8, 4.0)
        assert len(inst) == 16
        halves = [it for it in inst if it.size == 0.5]
        tinies = [it for it in inst if it.size == pytest.approx(1 / 8)]
        assert len(halves) == len(tinies) == 8
        assert all(it.duration == 1.0 for it in halves)
        assert all(it.duration == 4.0 for it in tinies)
        assert inst.mu == 4.0

    def test_nf_cost_exactly_n_mu(self):
        for n, mu in [(4, 2.0), (8, 8.0), (32, 3.0)]:
            result = run_packing(next_fit_lower_bound(n, mu), NextFit())
            assert result.total_usage_time == pytest.approx(n * mu)

    def test_opt_is_half_n_plus_mu(self):
        n, mu = 8, 4.0
        opt = opt_total(next_fit_lower_bound(n, mu))
        assert opt.lower == pytest.approx(n / 2 + mu)

    def test_ratio_approaches_two_mu(self):
        """nµ/(n/2+µ) is increasing in n toward 2µ."""
        mu = 4.0
        prev = 0.0
        for n in (4, 8, 16, 64, 256):
            inst = next_fit_lower_bound(n, mu)
            nf = run_packing(inst, NextFit()).total_usage_time
            analytic = n * mu / (n / 2 + mu)
            assert nf / (n / 2 + mu) == pytest.approx(analytic)
            assert analytic > prev
            prev = analytic
        assert prev > 2 * mu * 0.9  # within 10% of the limit at n=256

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            next_fit_lower_bound(2, 4.0)
        with pytest.raises(ValueError):
            next_fit_lower_bound(8, 1.0)


class TestUniversalLowerBound:
    def test_every_unclassified_algorithm_pays_n_mu(self):
        """The construction leaves no placement choice for Any Fit
        algorithms and Next Fit — they all pay exactly nµ."""
        n, mu = 10, 6.0
        inst = universal_lower_bound(n, mu)
        for name in ("first-fit", "best-fit", "worst-fit", "last-fit",
                     "random-fit", "next-fit"):
            cost = run_packing(inst, make_algorithm(name)).total_usage_time
            assert cost == pytest.approx(n * mu), name

    def test_classified_algorithms_escape_the_gadget(self):
        """Size-classified policies segregate the ε-fillers into their own
        bins and dodge the trap — exactly why hybrid algorithms can beat
        the Any Fit lower bound (Section II)."""
        n, mu = 10, 6.0
        inst = universal_lower_bound(n, mu)
        for name in ("hybrid-first-fit", "classified-next-fit"):
            cost = run_packing(inst, make_algorithm(name)).total_usage_time
            assert cost < 0.5 * n * mu, name

    def test_each_round_opens_one_bin(self):
        n = 8
        result = run_packing(universal_lower_bound(n, 4.0), FirstFit())
        assert result.num_bins == n

    def test_opt_near_n_plus_mu(self):
        n, mu = 10, 6.0
        opt = opt_total(universal_lower_bound(n, mu))
        assert opt.lower == pytest.approx(n + mu, rel=0.15)

    def test_ratio_approaches_mu(self):
        mu = 8.0
        inst = universal_lower_bound(40, mu)
        ff = run_packing(inst, FirstFit())
        opt = opt_total(inst)
        ratio = ff.total_usage_time / opt.lower
        assert ratio > 0.8 * mu
        assert ratio <= mu + 4.0  # Theorem 1 must still hold

    def test_validation(self):
        with pytest.raises(ValueError):
            universal_lower_bound(0, 4.0)
        with pytest.raises(ValueError):
            universal_lower_bound(8, 1.0)
        with pytest.raises(ValueError):
            universal_lower_bound(8, 4.0, delta=0.2)  # n·δ ≥ 1


class TestBestFitStaircase:
    def test_blockers_open_n_bins(self):
        n = 12
        inst = best_fit_staircase(n, 4.0)
        result = run_packing(inst, FirstFit())
        assert result.num_bins == n

    def test_bf_scatters_ff_consolidates(self):
        inst = best_fit_staircase(24, 8.0)
        bf = run_packing(inst, BestFit())
        ff = run_packing(inst, FirstFit())
        # count bins that stay open past the blocker phase (close after t=2)
        bf_long = sum(1 for b in bf.bins if b.closed_at > 2.0)
        ff_long = sum(1 for b in ff.bins if b.closed_at > 2.0)
        assert ff_long == 1
        assert bf_long > 3

    def test_separation_grows_with_mu(self):
        gaps = []
        for mu in (4.0, 16.0):
            inst = best_fit_staircase(24, mu)
            bf = run_packing(inst, BestFit()).total_usage_time
            ff = run_packing(inst, FirstFit()).total_usage_time
            gaps.append(bf / ff)
        assert gaps[1] > gaps[0] > 1.0

    def test_fillers_bounded(self):
        with pytest.raises(ValueError):
            best_fit_staircase(10, 4.0, fillers=100)


class TestAnyfitPressure:
    def test_rounds_scale_cost_linearly(self):
        one = run_packing(anyfit_pressure(1, 8, 4.0), FirstFit()).total_usage_time
        three = run_packing(anyfit_pressure(3, 8, 4.0), FirstFit()).total_usage_time
        assert three == pytest.approx(3 * one)

    def test_rounds_do_not_interact(self):
        """Bins from different rounds never overlap in time."""
        result = run_packing(anyfit_pressure(2, 6, 3.0), FirstFit())
        periods = sorted((b.usage_period for b in result.bins), key=lambda p: p.left)
        first_round = [p for p in periods if p.left < 3.0 + 1.0]
        second_round = [p for p in periods if p.left >= 3.0 + 1.0]
        assert first_round and second_round
        assert max(p.right for p in first_round) <= min(p.left for p in second_round) + 1e-9
