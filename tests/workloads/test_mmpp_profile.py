"""Tests for the MMPP generator and instance profiler."""

import pytest

from repro.core.items import Item, ItemList
from repro.workloads.mmpp import MMPPPhase, mmpp_workload, two_phase_bursty
from repro.workloads.profile import profile_instance
from repro.workloads.random_workloads import poisson_workload


class TestMMPP:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            MMPPPhase("bad", -1.0, 1.0)
        with pytest.raises(ValueError):
            MMPPPhase("bad", 1.0, 0.0)
        with pytest.raises(ValueError):
            mmpp_workload(10.0, seed=1, phases=())

    def test_arrivals_within_horizon(self):
        inst = mmpp_workload(50.0, seed=1)
        assert all(0 <= it.arrival < 50.0 for it in inst)

    def test_reproducible(self):
        a = mmpp_workload(40.0, seed=3)
        b = mmpp_workload(40.0, seed=3)
        assert [it.arrival for it in a] == [it.arrival for it in b]

    def test_mu_respected(self):
        inst = mmpp_workload(60.0, seed=2, mu_target=4.0)
        if len(inst) > 1:
            assert inst.mu <= 4.0 + 1e-9

    def test_burstier_than_poisson(self):
        """The two-phase MMPP shows higher arrival dispersion than a
        rate-matched Poisson stream (statistical, averaged over seeds)."""
        mmpp_b, poisson_b = [], []
        for seed in range(8):
            bursty = mmpp_workload(
                80.0, seed=seed,
                phases=two_phase_bursty(base_rate=0.5, burst_rate=12.0),
            )
            if len(bursty) < 5:
                continue
            mmpp_b.append(profile_instance(bursty).burstiness)
            smooth = poisson_workload(len(bursty), seed=seed, arrival_rate=2.0)
            poisson_b.append(profile_instance(smooth).burstiness)
        assert sum(mmpp_b) / len(mmpp_b) > sum(poisson_b) / len(poisson_b)

    def test_zero_rate_phase_produces_gaps(self):
        phases = (
            MMPPPhase("on", 8.0, 2.0),
            MMPPPhase("off", 0.0, 2.0),
        )
        inst = mmpp_workload(60.0, seed=5, phases=phases)
        assert len(inst) > 0


class TestProfile:
    def test_empty_instance(self):
        p = profile_instance(ItemList([]))
        assert p.n == 0
        assert p.span == 0.0

    def test_basic_numbers(self):
        items = ItemList(
            [Item(0, 0.5, 0.0, 2.0), Item(1, 0.6, 1.0, 3.0), Item(2, 0.1, 5.0, 6.0)]
        )
        p = profile_instance(items)
        assert p.n == 3
        assert p.mu == pytest.approx(2.0)
        assert p.span == pytest.approx(4.0)
        assert p.horizon == pytest.approx(6.0)
        assert p.peak_concurrency == 2
        assert p.large_item_fraction == pytest.approx(2 / 3)
        assert p.mean_size == pytest.approx(0.4)

    def test_mean_concurrency_identity(self):
        """mean concurrency × horizon == Σ durations."""
        items = poisson_workload(60, seed=9)
        p = profile_instance(items)
        total_durations = sum(it.duration for it in items)
        assert p.mean_concurrency * p.horizon == pytest.approx(
            total_durations, rel=1e-6
        )

    def test_render_contains_key_fields(self):
        p = profile_instance(poisson_workload(30, seed=1))
        text = p.render()
        assert "µ" in text and "burstiness" in text and "OPT_total" in text
