"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core.items import Item, ItemList


@pytest.fixture
def simple_items() -> ItemList:
    """Three overlapping items that First Fit packs into two bins."""
    return ItemList(
        [
            Item(0, size=0.6, arrival=0.0, departure=2.0),
            Item(1, size=0.5, arrival=0.5, departure=1.5),
            Item(2, size=0.4, arrival=1.0, departure=3.0),
        ]
    )


@pytest.fixture
def disjoint_items() -> ItemList:
    """Items that never overlap: any algorithm may reuse nothing."""
    return ItemList(
        [
            Item(0, size=0.9, arrival=0.0, departure=1.0),
            Item(1, size=0.9, arrival=2.0, departure=3.5),
            Item(2, size=0.9, arrival=5.0, departure=6.0),
        ]
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def item_lists(
    min_items: int = 1,
    max_items: int = 40,
    max_mu: float = 16.0,
    min_size: float = 0.02,
    max_size: float = 1.0,
) -> st.SearchStrategy[ItemList]:
    """Strategy for valid random instances with bounded µ.

    Durations are drawn in ``[1, max_mu]`` so the realised µ is at most
    ``max_mu``; arrivals in ``[0, 50]``; sizes in
    ``[min_size, max_size]``.  Values are rounded to limit degenerate
    float pathologies while keeping ties (equal arrival times etc.)
    reasonably likely, which exercises the event ordering rules.
    """

    @st.composite
    def build(draw):
        n = draw(st.integers(min_items, max_items))
        items = []
        for i in range(n):
            arrival = round(draw(st.floats(0.0, 50.0, allow_nan=False)), 2)
            duration = round(draw(st.floats(1.0, max_mu, allow_nan=False)), 2)
            size = round(draw(st.floats(min_size, max_size, allow_nan=False)), 3)
            size = min(max(size, min_size), max_size)
            items.append(Item(i, size, arrival, arrival + duration))
        return ItemList(items)

    return build()
