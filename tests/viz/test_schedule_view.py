"""Tests for the offline/schedule renderers."""

import pytest

from repro.core.items import Item, ItemList
from repro.offline import exact_offline
from repro.opt.schedule import RepackingSchedule, build_repacking_schedule
from repro.viz.schedule_view import render_assignment, render_schedule
from repro.workloads.random_workloads import poisson_workload


def inst():
    return poisson_workload(15, seed=4, mu_target=4.0, arrival_rate=1.5)


class TestRenderAssignment:
    def test_one_row_per_group(self):
        assignment, _ = exact_offline(inst())
        out = render_assignment(assignment)
        assert out.count("group ") == assignment.num_groups
        assert f"{assignment.num_groups} groups" in out

    def test_mentions_cost(self):
        assignment, _ = exact_offline(inst())
        assert f"{assignment.cost():.3f}" in render_assignment(assignment)

    def test_idle_gap_rendered_differently(self):
        items = ItemList([Item(0, 0.2, 0.0, 1.0), Item(1, 0.2, 5.0, 6.0)])
        assignment, _ = exact_offline(items)
        out = render_assignment(assignment)
        if assignment.num_groups == 1:  # both in one reopenable group
            assert "·" in out  # the unbilled gap shows as dots


class TestRenderSchedule:
    def test_empty(self):
        empty = RepackingSchedule(intervals=(), total_usage_time=0.0,
                                  migrations=0, exact=True)
        assert "empty" in render_schedule(empty)

    def test_bin_count_rows(self):
        sched = build_repacking_schedule(inst())
        out = render_schedule(sched)
        max_bins = max(iv.num_bins for iv in sched.intervals)
        assert out.count(" bins |") == max_bins
        assert "migrations" in out

    def test_migration_marker_present_when_migrating(self):
        sched = build_repacking_schedule(
            poisson_workload(40, seed=3, mu_target=6.0, arrival_rate=3.0)
        )
        out = render_schedule(sched)
        if sched.migrations > 0:
            assert "!" in out
