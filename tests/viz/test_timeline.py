"""Tests for the ASCII timeline renderers."""

from repro.algorithms import FirstFit
from repro.analysis.supplier import analyze_suppliers
from repro.analysis.usage_periods import decompose_usage_periods
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.viz.timeline import (
    render_bins,
    render_items,
    render_subperiods,
    render_usage_decomposition,
)
from repro.workloads.random_workloads import poisson_workload


def sample():
    return ItemList(
        [Item(0, 0.5, 0.0, 2.0), Item(1, 0.3, 1.0, 3.0), Item(2, 0.4, 4.0, 6.0)]
    )


class TestRenderItems:
    def test_one_row_per_item_plus_header_and_span(self):
        out = render_items(sample())
        lines = out.splitlines()
        assert len(lines) == 1 + 3 + 1
        assert "span" in lines[-1]

    def test_mentions_sizes(self):
        out = render_items(sample())
        assert "s=0.5" in out

    def test_bars_reflect_position(self):
        out = render_items(sample(), width=60)
        rows = out.splitlines()[1:-1]
        # first item starts at the left edge, last item ends at the right
        assert rows[0].split("|")[1].startswith("█")
        assert rows[2].split("|")[1].rstrip().endswith("█")


class TestRenderBins:
    def test_counts_bins(self):
        result = run_packing(sample(), FirstFit())
        out = render_bins(result)
        assert f"{result.num_bins} bins" in out
        assert out.count("bin ") == result.num_bins


class TestRenderDecomposition:
    def test_renders_v_and_w_glyphs(self):
        result = run_packing(
            ItemList([Item(0, 0.7, 0.0, 3.0), Item(1, 0.7, 1.0, 5.0)]),
            FirstFit(),
        )
        deco = decompose_usage_periods(result)
        out = render_usage_decomposition(result, deco)
        assert "░" in out and "█" in out
        assert "span" in out


class TestRenderSubperiods:
    def test_renders_supplier_rows(self):
        inst = poisson_workload(80, seed=3, mu_target=4.0, arrival_rate=4.0)
        result = run_packing(inst, FirstFit())
        analysis = analyze_suppliers(result)
        out = render_subperiods(result, analysis)
        assert "bin " in out
        if analysis.groups:
            assert "s" in out
