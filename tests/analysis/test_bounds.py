"""Tests for the analytic bounds table."""

import pytest

from repro.analysis.bounds import KNOWN_BOUNDS, bounds_table, theorem1_upper_bound


class TestTheorem1Bound:
    def test_value(self):
        assert theorem1_upper_bound(1.0) == 5.0
        assert theorem1_upper_bound(10.0) == 14.0

    def test_mu_below_one_rejected(self):
        with pytest.raises(ValueError):
            theorem1_upper_bound(0.5)


class TestKnownBounds:
    def by_name(self):
        return {b.algorithm: b for b in KNOWN_BOUNDS}

    def test_first_fit_gap_is_constant(self):
        """The paper's contribution: FF's upper−lower gap is 3, ∀µ."""
        ff = self.by_name()["first-fit"]
        for mu in (1.0, 2.0, 7.0, 100.0):
            assert ff.upper_at(mu) - ff.lower_at(mu) == pytest.approx(3.0)

    def test_first_fit_upper_has_unit_mu_factor(self):
        """First known bound with multiplicative factor 1 for µ."""
        ff = self.by_name()["first-fit"]
        assert ff.upper_at(101.0) - ff.upper_at(100.0) == pytest.approx(1.0)

    def test_next_fit_bracket(self):
        nf = self.by_name()["next-fit"]
        for mu in (2.0, 8.0):
            assert nf.lower_at(mu) == pytest.approx(2 * mu)
            assert nf.upper_at(mu) == pytest.approx(2 * mu + 1)

    def test_next_fit_worse_than_first_fit_asymptotically(self):
        """Section VIII's point: NF's lower bound exceeds FF's upper
        bound for large µ."""
        d = self.by_name()
        assert d["next-fit"].lower_at(10.0) > d["first-fit"].upper_at(10.0)

    def test_best_fit_unbounded(self):
        assert self.by_name()["best-fit"].lower_at(3.0) == float("inf")

    def test_universal_lower_bound_below_ff(self):
        d = self.by_name()
        for mu in (1.0, 4.0, 16.0):
            assert d["any online algorithm"].lower_at(mu) <= d["first-fit"].lower_at(mu)

    def test_table_renders(self):
        text = bounds_table(8.0)
        assert "first-fit" in text
        assert "12.00" in text  # µ+4 at µ=8
        assert "unbounded" in text
