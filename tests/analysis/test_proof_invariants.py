"""Property-based verification of the paper's propositions and lemmas.

These are the F5/F6- and P*-level reproduction tests: on randomized and
adversarial First Fit runs, every structural claim of Sections IV–VII
must hold — Propositions 3–6, Lemma 2's non-intersection (under the
reconstructed constants), and the closed-form Theorem-1 chain
``FF_total ≤ (µ+3)·TS + span``.
"""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit
from repro.analysis.verification import theorem1_slack, verify_analysis
from repro.core.packing import run_packing
from repro.opt.opt_total import opt_total
from repro.workloads.adversarial import (
    anyfit_pressure,
    best_fit_staircase,
    next_fit_lower_bound,
    universal_lower_bound,
)
from repro.workloads.random_workloads import batch_workload, poisson_workload

from ..conftest import item_lists


def ff(items):
    return run_packing(items, FirstFit())


class TestPropositionsOnRandomInstances:
    @given(item_lists(max_items=40, max_size=0.95))
    @settings(max_examples=80, deadline=None)
    def test_all_checks_pass(self, items):
        report = verify_analysis(ff(items))
        assert report.ok, [f"{v.check}: {v.context}: {v.detail}" for v in report.violations]

    @given(item_lists(max_items=40, max_size=0.95, max_mu=4.0))
    @settings(max_examples=40, deadline=None)
    def test_small_mu_regime(self, items):
        """µ < 2 is where wrong constant reconstructions break Lemma 2."""
        report = verify_analysis(ff(items))
        assert not report.failures("lemma2")

    @given(item_lists(max_items=40, min_size=0.02, max_size=0.45))
    @settings(max_examples=40, deadline=None)
    def test_all_small_items(self, items):
        """All-small instances maximise l-subperiod structure."""
        report = verify_analysis(ff(items))
        assert report.ok, [f"{v.check}: {v.detail}" for v in report.violations]

    @given(item_lists(max_items=30, min_size=0.5, max_size=1.0))
    @settings(max_examples=30, deadline=None)
    def test_all_large_items(self, items):
        """No small items → no l-subperiods, all V time is h-subperiods."""
        report = verify_analysis(ff(items))
        assert report.ok
        assert report.num_l_subperiods == 0


class TestPropositionsOnAdversarialInstances:
    @pytest.mark.parametrize(
        "items",
        [
            next_fit_lower_bound(8, 4.0),
            next_fit_lower_bound(16, 2.0),
            universal_lower_bound(10, 6.0),
            universal_lower_bound(20, 2.0),
            best_fit_staircase(12, 5.0),
            best_fit_staircase(24, 16.0),
            anyfit_pressure(3, 8, 4.0),
        ],
        ids=["nf8", "nf16", "univ10", "univ20", "stair12", "stair24", "pressure"],
    )
    def test_all_checks_pass(self, items):
        report = verify_analysis(ff(items))
        assert report.ok, [f"{v.check}: {v.detail}" for v in report.violations]

    def test_dense_random_suite(self):
        for seed in range(12):
            inst = poisson_workload(120, seed=seed, mu_target=8.0, arrival_rate=5.0)
            report = verify_analysis(ff(inst))
            assert report.ok, (seed, [v.check for v in report.violations])

    def test_batch_suite(self):
        for seed in range(8):
            inst = batch_workload(6, 10, seed=seed, mu_target=6.0)
            report = verify_analysis(ff(inst))
            assert report.ok, (seed, [v.check for v in report.violations])


class TestTheorem1:
    """The headline: FF_total ≤ (µ+4)·OPT_total."""

    @given(item_lists(max_items=16))
    @settings(max_examples=40, deadline=None)
    def test_theorem1_bound_property(self, items):
        result = ff(items)
        opt = opt_total(items)
        assert theorem1_slack(result, opt.lower) >= -1e-7

    @pytest.mark.parametrize("mu", [1.5, 2.0, 4.0, 8.0, 16.0])
    def test_theorem1_on_adversarial(self, mu):
        for inst in (universal_lower_bound(16, mu), next_fit_lower_bound(12, mu)):
            result = ff(inst)
            opt = opt_total(inst)
            assert theorem1_slack(result, opt.lower) >= -1e-7

    @given(item_lists(max_items=40, max_size=0.95))
    @settings(max_examples=60, deadline=None)
    def test_closed_form_chain(self, items):
        """FF_total ≤ (µ+3)·time-space + span — no OPT solver needed."""
        report = verify_analysis(ff(items), check_lemma2=False)
        assert report.closed_form_slack >= -1e-7

    def test_closed_form_chain_heavy(self):
        for seed in range(6):
            inst = poisson_workload(250, seed=seed, mu_target=12.0, arrival_rate=6.0)
            report = verify_analysis(ff(inst), check_lemma2=False)
            assert report.closed_form_slack >= -1e-7
