"""Tests for supplier bins, pairing and consolidation (Sections V–VI)."""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit
from repro.analysis.supplier import analyze_suppliers
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.workloads.random_workloads import poisson_workload

from ..conftest import item_lists


class TestSupplierAssignment:
    def test_supplier_is_last_opened_lower_index(self):
        items = ItemList(
            [
                Item(0, 0.95, 0.0, 20.0),  # bin 0
                Item(1, 0.95, 1.0, 20.0),  # bin 1
                Item(2, 0.1, 2.0, 4.0),    # small → bin 2, supplier = bin 1
            ]
        )
        result = run_packing(items, FirstFit())
        analysis = analyze_suppliers(result)
        assert len(analysis.assignments) == 1
        assert analysis.assignments[0].supplier_index == 1

    def test_supplier_must_be_open_at_left_endpoint(self):
        items = ItemList(
            [
                Item(0, 0.95, 0.0, 3.0),   # bin 0, closes at 3
                Item(1, 0.95, 1.0, 20.0),  # bin 1
                Item(2, 0.1, 5.0, 7.0),    # bin 1 has room? 0.95+0.1>1 → bin 2
            ]
        )
        result = run_packing(items, FirstFit())
        analysis = analyze_suppliers(result)
        # at t=5 bin 0 is closed; supplier must be bin 1
        assert analysis.assignments[0].supplier_index == 1

    def test_supplier_level_exceeds_complement(self):
        """First Fit implies the supplier rejected the opener."""
        inst = poisson_workload(80, seed=13, mu_target=6.0, arrival_rate=3.0)
        result = run_packing(inst, FirstFit())
        analysis = analyze_suppliers(result)
        for asg in analysis.assignments:
            t = asg.subperiod.interval.left
            supplier = result.bins[asg.supplier_index]
            level = supplier.level_at(t)
            assert level + asg.subperiod.opener.size > 1.0 - 1e-9


class TestGroups:
    def test_groups_partition_l_subperiods(self):
        inst = poisson_workload(90, seed=4, mu_target=5.0, arrival_rate=4.0)
        result = run_packing(inst, FirstFit())
        analysis = analyze_suppliers(result)
        from_groups = sum(len(g.members) for g in analysis.groups)
        assert from_groups == len(analysis.assignments)

    def test_consolidated_members_share_supplier(self):
        inst = poisson_workload(120, seed=8, mu_target=4.0, arrival_rate=5.0)
        result = run_packing(inst, FirstFit())
        analysis = analyze_suppliers(result)
        by_sub = {
            (a.subperiod.bin_index, a.subperiod.position): a.supplier_index
            for a in analysis.assignments
        }
        for g in analysis.groups:
            for m in g.members:
                assert by_sub[(m.bin_index, m.position)] == g.supplier_index

    def test_supplier_period_contains_member_windows(self):
        """Lemmas 3–4 containment (by construction, but pinned)."""
        inst = poisson_workload(100, seed=2, mu_target=5.0, arrival_rate=4.0)
        result = run_packing(inst, FirstFit())
        analysis = analyze_suppliers(result)
        d = analysis.radius_divisor
        for g in analysis.groups:
            for m in g.members:
                r = m.length / d
                assert g.supplier_period.left <= m.interval.left - r + 1e-9
                assert m.interval.left + r <= g.supplier_period.right + 1e-9

    def test_pair_requires_growth(self):
        """Members of a consolidated group grow by more than the pair
        coefficient between consecutive subperiods."""
        inst = poisson_workload(150, seed=17, mu_target=3.0, arrival_rate=6.0)
        result = run_packing(inst, FirstFit())
        analysis = analyze_suppliers(result)
        c = analysis.pair_coefficient_used
        for g in analysis.groups:
            for a, b in zip(g.members, g.members[1:]):
                assert b.length > c * a.length

    @given(item_lists(max_items=30, max_size=0.9))
    @settings(max_examples=40, deadline=None)
    def test_default_parameters_are_mu_based(self, items):
        result = run_packing(items, FirstFit())
        analysis = analyze_suppliers(result)
        assert analysis.pair_coefficient_used == pytest.approx(items.mu)
        assert analysis.radius_divisor == pytest.approx(items.mu + 1.0)
