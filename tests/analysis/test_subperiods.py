"""Tests for the Section V subperiod machinery (Figure 3)."""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit
from repro.analysis.subperiods import (
    SMALL_ITEM_THRESHOLD,
    build_subperiods,
    select_small_items,
)
from repro.core.intervals import Interval
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing

from ..conftest import item_lists


def mk(i, arrival, duration=1.0, size=0.1):
    return Item(i, size, arrival, arrival + duration)


class TestSelection:
    V = Interval(0.0, 100.0)

    def test_empty(self):
        assert select_small_items([], self.V, window=4.0) == []

    def test_single(self):
        s = [mk(0, 1.0)]
        assert select_small_items(s, self.V, 4.0) == s

    def test_picks_last_within_window(self):
        # from item at t=0, items at 1, 2, 3 are in window 4 → select t=3
        s = [mk(0, 0.0), mk(1, 1.0), mk(2, 2.0), mk(3, 3.0)]
        sel = select_small_items(s, self.V, 4.0)
        assert [it.item_id for it in sel[:2]] == [0, 3]

    def test_window_is_inclusive(self):
        # item exactly at t=window counts as inside
        s = [mk(0, 0.0), mk(1, 4.0)]
        sel = select_small_items(s, self.V, 4.0)
        assert [it.item_id for it in sel] == [0, 1]

    def test_jumps_to_first_beyond_empty_window(self):
        s = [mk(0, 0.0), mk(1, 10.0), mk(2, 11.0)]
        sel = select_small_items(s, self.V, 4.0)
        # 0 → window (0,4] empty → first after = 10 (selected); from 10 the
        # window (10,14] holds 11, the last of which is selected too
        assert [it.item_id for it in sel] == [0, 1, 2]

    def test_termination_near_v_end(self):
        v = Interval(0.0, 10.0)
        # selected at t=7 is within window 4 of V's end (10-4=6) → stop
        s = [mk(0, 0.0), mk(1, 7.0), mk(2, 8.0)]
        sel = select_small_items(s, v, 4.0)
        assert [it.item_id for it in sel] == [0, 1]

    def test_termination_last_small(self):
        v = Interval(0.0, 100.0)
        s = [mk(0, 0.0), mk(1, 3.0)]
        sel = select_small_items(s, v, 4.0)
        assert [it.item_id for it in sel] == [0, 1]


class TestBuildSubperiods:
    def test_no_smalls_all_h(self):
        # two large items only → V of bin 1 (if any) is all h-subperiod
        items = ItemList(
            [Item(0, 0.7, 0.0, 10.0), Item(1, 0.7, 2.0, 4.0)]
        )
        result = run_packing(items, FirstFit())
        subs = build_subperiods(result)
        bin1 = subs[1]
        assert bin1.l_subperiods == ()
        assert len(bin1.h_subperiods) == 1
        assert bin1.h_subperiods[0].interval == bin1.v

    def test_empty_v_no_subperiods(self):
        items = ItemList([Item(0, 0.5, 0.0, 3.0)])
        subs = build_subperiods(run_packing(items, FirstFit()))
        assert subs[0].v.is_empty
        assert subs[0].l_subperiods == () and subs[0].h_subperiods == ()

    def test_small_item_opens_l_subperiod(self):
        # bin 1 opens with a small item while bin 0 is still open
        items = ItemList(
            [
                Item(0, 0.95, 0.0, 10.0),  # bin 0
                Item(1, 0.1, 1.0, 3.0),    # small, doesn't fit bin 0 → bin 1
            ]
        )
        result = run_packing(items, FirstFit())
        subs = build_subperiods(result)
        bin1 = subs[1]
        assert len(bin1.l_subperiods) == 1
        x = bin1.l_subperiods[0]
        assert x.interval.left == 1.0
        assert x.opener.item_id == 1

    def test_partition_covers_v(self):
        """l- and h-subperiods partition V_k exactly."""
        items = ItemList(
            [
                Item(0, 0.9, 0.0, 20.0),
                Item(1, 0.2, 1.0, 3.0),
                Item(2, 0.2, 2.0, 4.0),
                Item(3, 0.6, 5.0, 9.0),
                Item(4, 0.2, 12.0, 14.0),
            ]
        )
        result = run_packing(items, FirstFit())
        for bsp in build_subperiods(result):
            total = bsp.total_l + bsp.total_h
            assert total == pytest.approx(bsp.v.length, abs=1e-9)

    @given(item_lists(max_items=35, max_size=0.95))
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, items):
        """Subperiods always tile V_k, are disjoint, and lie inside V_k."""
        result = run_packing(items, FirstFit())
        for bsp in build_subperiods(result):
            ivs = sorted(
                [x.interval for x in bsp.l_subperiods]
                + [y.interval for y in bsp.h_subperiods]
            )
            assert sum(iv.length for iv in ivs) == pytest.approx(
                bsp.v.length, abs=1e-6
            )
            for a, b in zip(ivs, ivs[1:]):
                assert a.right <= b.left + 1e-9  # disjoint
            for iv in ivs:
                assert bsp.v.left - 1e-9 <= iv.left
                assert iv.right <= bsp.v.right + 1e-9

    @given(item_lists(max_items=35, max_size=0.95))
    @settings(max_examples=60, deadline=None)
    def test_openers_are_small_items_in_own_bin(self, items):
        result = run_packing(items, FirstFit())
        for bsp in build_subperiods(result):
            bin_items = {it.item_id for it in result.bins[bsp.bin_index].all_items}
            for x in bsp.l_subperiods:
                assert x.opener.size < SMALL_ITEM_THRESHOLD
                assert x.opener.item_id in bin_items
