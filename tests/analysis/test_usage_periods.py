"""Tests for the Section IV usage-period decomposition (Figure 2)."""

import pytest
from hypothesis import given, settings

from repro.algorithms import ALGORITHM_REGISTRY, FirstFit, make_algorithm
from repro.analysis.usage_periods import decompose_usage_periods
from repro.core.intervals import Interval
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing

from ..conftest import item_lists


def pack(items, algo=None):
    return run_packing(ItemList(items), algo or FirstFit())


class TestDecompositionExamples:
    def test_single_bin_all_w(self):
        deco = decompose_usage_periods(pack([Item(0, 0.5, 0.0, 3.0)]))
        bp = deco.per_bin[0]
        assert bp.overlapped.is_empty
        assert bp.exclusive == Interval(0.0, 3.0)
        assert bp.latest_earlier_close == 0.0  # E_1 = U_1^-

    def test_nested_bin_all_v(self):
        # bin 1 lives strictly inside bin 0's lifetime → V_2 = U_2, W_2 = ∅
        deco = decompose_usage_periods(
            pack([Item(0, 0.7, 0.0, 10.0), Item(1, 0.7, 2.0, 4.0)])
        )
        bp = deco.per_bin[1]
        assert bp.overlapped == Interval(2.0, 4.0)
        assert bp.exclusive.is_empty

    def test_overhanging_bin_split(self):
        # bin 1 outlives bin 0: V_2 = [1, 3), W_2 = [3, 5)
        deco = decompose_usage_periods(
            pack([Item(0, 0.7, 0.0, 3.0), Item(1, 0.7, 1.0, 5.0)])
        )
        bp = deco.per_bin[1]
        assert bp.overlapped == Interval(1.0, 3.0)
        assert bp.exclusive == Interval(3.0, 5.0)

    def test_gap_bin_all_w(self):
        # bin 1 opens after bin 0 closed: E_2 < U_2^- → V_2 empty
        deco = decompose_usage_periods(
            pack([Item(0, 0.7, 0.0, 1.0), Item(1, 0.7, 3.0, 5.0)])
        )
        bp = deco.per_bin[1]
        assert bp.overlapped.is_empty
        assert bp.exclusive == Interval(3.0, 5.0)

    def test_e_k_uses_max_not_last(self):
        # bin 0 long-lived, bin 1 short: E_3 must be bin 0's closing
        deco = decompose_usage_periods(
            pack(
                [
                    Item(0, 0.7, 0.0, 10.0),
                    Item(1, 0.7, 1.0, 2.0),
                    Item(2, 0.7, 3.0, 5.0),
                ]
            )
        )
        assert deco.per_bin[2].latest_earlier_close == 10.0
        assert deco.per_bin[2].overlapped == Interval(3.0, 5.0)


class TestEquationOne:
    """Eq. (1): FF_total = ΣV + span with the W's a partition of the span."""

    @given(item_lists(max_items=35))
    @settings(max_examples=60, deadline=None)
    def test_w_disjoint_and_sum_to_span_first_fit(self, items):
        result = run_packing(items, FirstFit())
        deco = decompose_usage_periods(result)
        assert deco.total_w == pytest.approx(items.span, rel=1e-9, abs=1e-7)
        ws = [bp.exclusive for bp in deco.per_bin if not bp.exclusive.is_empty]
        for i in range(len(ws)):
            for j in range(i + 1, len(ws)):
                assert not ws[i].intersects(ws[j])

    @given(item_lists(max_items=25))
    @settings(max_examples=30, deadline=None)
    def test_total_identity_holds_for_every_algorithm(self, items):
        """The decomposition is packing-agnostic (opening-ordered bins)."""
        for name in ("best-fit", "next-fit", "worst-fit"):
            result = run_packing(items, make_algorithm(name))
            deco = decompose_usage_periods(result)
            assert deco.total_v + deco.span == pytest.approx(
                result.total_usage_time, rel=1e-9, abs=1e-7
            )

    @given(item_lists(max_items=30))
    @settings(max_examples=40, deadline=None)
    def test_v_is_covered_by_an_earlier_bin(self, items):
        """Every nonempty V_k lies inside some earlier bin's usage period."""
        result = run_packing(items, FirstFit())
        deco = decompose_usage_periods(result)
        for k, bp in enumerate(deco.per_bin):
            if bp.overlapped.is_empty:
                continue
            assert any(
                deco.per_bin[j].usage.contains_interval(bp.overlapped)
                for j in range(k)
            )
