"""Tests for resource augmentation analysis."""

import pytest

from repro.algorithms import FirstFit, NextFit
from repro.analysis.augmentation import augment_capacity, augmented_ratio
from repro.core.items import Item, ItemList
from repro.opt.opt_total import opt_total
from repro.workloads.adversarial import next_fit_lower_bound


class TestAugmentCapacity:
    def test_capacity_scaled(self):
        items = ItemList([Item(0, 0.5, 0, 1)])
        assert augment_capacity(items, 0.5).capacity == pytest.approx(1.5)

    def test_items_unchanged(self):
        items = ItemList([Item(0, 0.5, 0, 1), Item(1, 0.9, 2, 4)])
        aug = augment_capacity(items, 1.0)
        assert [(it.size, it.arrival, it.departure) for it in aug] == [
            (it.size, it.arrival, it.departure) for it in items
        ]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            augment_capacity(ItemList([Item(0, 0.5, 0, 1)]), -0.1)


class TestAugmentedRatio:
    def test_zero_epsilon_is_plain_ratio(self):
        items = next_fit_lower_bound(8, 4.0)
        opt = opt_total(items)
        plain = 8 * 4.0 / opt.lower
        assert augmented_ratio(items, NextFit(), 0.0, opt=opt) == pytest.approx(plain)

    def test_nextfit_gadget_collapses(self):
        """Once ε ≥ 2/n the §VIII pairs share bins and NF improves a lot."""
        n = 8
        items = next_fit_lower_bound(n, 4.0)
        opt = opt_total(items)
        r0 = augmented_ratio(items, NextFit(), 0.0, opt=opt)
        r_big = augmented_ratio(items, NextFit(), 0.5, opt=opt)
        assert r_big < r0 / 1.5

    def test_can_beat_unit_opt_with_enough_capacity(self):
        # two conflicting unit-duration items share one double bin
        items = ItemList([Item(0, 0.8, 0.0, 2.0), Item(1, 0.8, 0.0, 2.0)])
        opt = opt_total(items)  # = 4 (two bins, two hours)
        r = augmented_ratio(items, FirstFit(), 1.0, opt=opt)
        assert r == pytest.approx(2.0 / 4.0)

    def test_shares_opt_across_sweep(self):
        items = next_fit_lower_bound(6, 3.0)
        opt = opt_total(items)
        rs = [augmented_ratio(items, NextFit(), e, opt=opt) for e in (0.0, 0.25, 1.0)]
        assert rs[0] >= rs[1] >= 0  # gadget-specific monotone prefix
