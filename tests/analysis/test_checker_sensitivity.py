"""Failure injection: the proof checkers must *detect* violations.

A verification suite that never fires is worthless — these tests corrupt
packing results in targeted ways and assert the corresponding checker
reports the damage.
"""

import pytest

from repro.algorithms import FirstFit
from repro.analysis.verification import verify_analysis
from repro.core.bins import Bin
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.core.result import PackingResult
from repro.workloads.random_workloads import poisson_workload


def base_result() -> PackingResult:
    inst = poisson_workload(60, seed=21, mu_target=5.0, arrival_rate=3.0)
    return run_packing(inst, FirstFit())


def clone_with_bins(result: PackingResult, bins) -> PackingResult:
    return PackingResult(
        items=result.items,
        bins=tuple(bins),
        algorithm_name=result.algorithm_name,
        item_bin=result.item_bin,
    )


class TestEquationOneCheckers:
    def test_detects_stretched_usage_period(self):
        """Inflating one bin's closing time breaks the ΣV+span identity."""
        result = base_result()
        bins = list(result.bins)
        b = bins[0]
        stretched = Bin(
            index=b.index,
            capacity=b.capacity,
            opened_at=b.opened_at,
            closed_at=b.closed_at + 5.0,
            level=b.level,
            active_items=dict(b.active_items),
            all_items=list(b.all_items),
            level_history=list(b.level_history),
        )
        bins[0] = stretched
        report = verify_analysis(clone_with_bins(result, bins), check_lemma2=False)
        assert not report.ok
        assert any(v.check.startswith("eq1") for v in report.violations)


class TestProp6Checker:
    def test_detects_low_level_in_h_subperiod(self):
        """Corrupting a bin's level history below 1/2 during an
        h-subperiod must trigger prop6."""
        # construct a run with a guaranteed h-subperiod: two large items,
        # the second bin nested inside the first bin's lifetime
        inst = ItemList(
            [Item(0, 0.7, 0.0, 10.0), Item(1, 0.7, 2.0, 6.0)]
        )
        result = run_packing(inst, FirstFit())
        clean = verify_analysis(result)
        assert clean.ok
        bins = list(result.bins)
        b = bins[1]
        corrupted = Bin(
            index=b.index,
            capacity=b.capacity,
            opened_at=b.opened_at,
            closed_at=b.closed_at,
            level=b.level,
            active_items=dict(b.active_items),
            all_items=list(b.all_items),
            # level drops to 0.1 in the middle of the h-subperiod
            level_history=[(2.0, 0.7), (3.0, 0.1), (6.0, 0.0)],
        )
        bins[1] = corrupted
        report = verify_analysis(clone_with_bins(result, bins), check_lemma2=False)
        assert report.failures("prop6")


class TestFFRejectionChecker:
    def test_detects_non_first_fit_packing(self):
        """A Worst Fit packing relabelled as 'first-fit' must trip the
        rejection checker whenever WF skipped a feasible earlier bin at
        an l-subperiod opener."""
        from repro.algorithms import WorstFit

        # craft an instance where WF demonstrably skips bin 0:
        #   bin0 at level 0.65 (two long items), bin1 at 0.60;
        #   a small 0.3 fits both; WF → bin1 (emptier), FF would → bin0
        inst = ItemList(
            [
                Item(0, 0.55, 0.0, 20.0),
                Item(1, 0.10, 0.0, 20.0),
                Item(2, 0.60, 0.5, 20.0),
                Item(3, 0.30, 3.0, 5.0),
            ]
        )
        wf = run_packing(inst, WorstFit())
        assert wf.item_bin[3] == 1  # the skip actually happened
        forged = PackingResult(
            items=wf.items,
            bins=wf.bins,
            algorithm_name="first-fit",  # the lie
            item_bin=wf.item_bin,
        )
        report = verify_analysis(forged, check_lemma2=False)
        assert report.failures("ff-rejection")


class TestTheoremChainChecker:
    def test_closed_form_slack_reported(self):
        report = verify_analysis(base_result(), check_lemma2=False)
        assert report.closed_form_slack > 0

    def test_detects_inflated_total(self):
        """Doubling every usage period blows the (µ+3)·TS + span chain."""
        result = base_result()
        bins = []
        for b in result.bins:
            scale_origin = result.items.packing_period.left
            length = b.closed_at - b.opened_at
            bins.append(
                Bin(
                    index=b.index,
                    capacity=b.capacity,
                    opened_at=b.opened_at,
                    closed_at=b.opened_at + 50.0 * max(length, 1.0),
                    level=b.level,
                    active_items=dict(b.active_items),
                    all_items=list(b.all_items),
                    level_history=list(b.level_history),
                )
            )
        report = verify_analysis(clone_with_bins(result, bins), check_lemma2=False)
        assert not report.ok
