"""Tests for the Section VII amortised-level accounting."""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit
from repro.analysis.amortization import amortization_report, bin_demand_over
from repro.core.intervals import Interval
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.workloads.random_workloads import poisson_workload

from ..conftest import item_lists


class TestBinDemandOver:
    def test_full_overlap(self):
        items = ItemList([Item(0, 0.5, 0.0, 2.0)])
        result = run_packing(items, FirstFit())
        assert bin_demand_over(result.bins[0], Interval(0.0, 2.0)) == pytest.approx(1.0)

    def test_partial_overlap(self):
        items = ItemList([Item(0, 0.5, 0.0, 2.0)])
        result = run_packing(items, FirstFit())
        assert bin_demand_over(result.bins[0], Interval(1.0, 5.0)) == pytest.approx(0.5)

    def test_disjoint_window(self):
        items = ItemList([Item(0, 0.5, 0.0, 2.0)])
        result = run_packing(items, FirstFit())
        assert bin_demand_over(result.bins[0], Interval(3.0, 4.0)) == 0.0

    def test_multiple_items_sum(self):
        items = ItemList([Item(0, 0.5, 0.0, 2.0), Item(1, 0.3, 1.0, 3.0)])
        result = run_packing(items, FirstFit())
        # over [0,3): 0.5·2 + 0.3·2 = 1.6
        assert bin_demand_over(result.bins[0], Interval(0.0, 3.0)) == pytest.approx(1.6)


class TestInequalityZeroAndThree:
    def test_holds_on_dense_random_suite(self):
        for seed in range(10):
            inst = poisson_workload(90, seed=seed, mu_target=6.0, arrival_rate=4.0)
            result = run_packing(inst, FirstFit())
            for ga in amortization_report(result):
                assert ga.holds, (
                    f"seed {seed}: measured {ga.measured_level_openers} < "
                    f"required {ga.required_level}"
                )

    @given(item_lists(max_items=35, max_size=0.95))
    @settings(max_examples=50, deadline=None)
    def test_holds_property(self, items):
        result = run_packing(items, FirstFit())
        for ga in amortization_report(result):
            assert ga.holds

    def test_full_demand_dominates_openers(self):
        inst = poisson_workload(80, seed=3, mu_target=5.0, arrival_rate=4.0)
        result = run_packing(inst, FirstFit())
        for ga in amortization_report(result):
            assert ga.own_demand_full >= ga.own_demand_openers - 1e-9
            assert ga.measured_level_full >= ga.measured_level_openers - 1e-9

    def test_required_level_is_one_over_mu_plus_three(self):
        inst = poisson_workload(60, seed=5, mu_target=4.0, arrival_rate=3.0)
        result = run_packing(inst, FirstFit())
        report = amortization_report(result)
        if report:
            assert report[0].required_level == pytest.approx(1.0 / (inst.mu + 3.0))
