"""Tests for Propositions 1–2 and the fractional-ceiling bound."""

import pytest
from hypothesis import given, settings

from repro.core.items import Item, ItemList
from repro.opt.lower_bounds import (
    combined_lower_bound,
    fractional_ceiling_bound,
    prop1_time_space_bound,
    prop2_span_bound,
)

from ..conftest import item_lists


class TestProp1:
    def test_single_item(self):
        items = ItemList([Item(0, 0.5, 0.0, 4.0)])
        assert prop1_time_space_bound(items) == pytest.approx(2.0)

    def test_scales_with_capacity(self):
        items = ItemList([Item(0, 1.0, 0.0, 4.0)], capacity=2.0)
        assert prop1_time_space_bound(items) == pytest.approx(2.0)


class TestProp2:
    def test_span_with_gap(self):
        items = ItemList([Item(0, 0.1, 0.0, 1.0), Item(1, 0.1, 3.0, 5.0)])
        assert prop2_span_bound(items) == pytest.approx(3.0)


class TestFractionalCeiling:
    def test_equals_span_for_light_load(self):
        # total size never exceeds 1 → ceiling is 1 whenever active
        items = ItemList([Item(0, 0.3, 0.0, 2.0), Item(1, 0.3, 1.0, 3.0)])
        assert fractional_ceiling_bound(items) == pytest.approx(items.span)

    def test_counts_parallel_demand(self):
        # 1.5 total size during [1,2) → 2 bins needed there
        items = ItemList([Item(0, 0.8, 0.0, 3.0), Item(1, 0.7, 1.0, 2.0)])
        # piecewise: [0,1)→1, [1,2)→2, [2,3)→1 → total 4
        assert fractional_ceiling_bound(items) == pytest.approx(4.0)

    def test_exact_unit_multiples_no_roundup(self):
        # ten 0.1-items active simultaneously: exactly 1 bin, not 2
        items = ItemList([Item(i, 0.1, 0.0, 1.0) for i in range(10)])
        assert fractional_ceiling_bound(items) == pytest.approx(1.0)

    def test_empty(self):
        assert fractional_ceiling_bound(ItemList([])) == 0.0

    def test_gap_contributes_nothing(self):
        items = ItemList([Item(0, 0.5, 0.0, 1.0), Item(1, 0.5, 10.0, 11.0)])
        assert fractional_ceiling_bound(items) == pytest.approx(2.0)


class TestDomination:
    @given(item_lists(max_items=25))
    @settings(max_examples=80, deadline=None)
    def test_ceiling_dominates_props(self, items):
        """The fractional-ceiling integral dominates Props 1 and 2."""
        frac = fractional_ceiling_bound(items)
        assert frac >= prop1_time_space_bound(items) - 1e-7
        assert frac >= prop2_span_bound(items) - 1e-7

    @given(item_lists(max_items=25))
    @settings(max_examples=40, deadline=None)
    def test_combined_is_ceiling(self, items):
        assert combined_lower_bound(items) == fractional_ceiling_bound(items)
