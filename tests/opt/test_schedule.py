"""Tests for the constructive repacking schedule."""

import pytest
from hypothesis import given, settings

from repro.core.items import Item, ItemList
from repro.opt.opt_total import opt_total
from repro.opt.schedule import build_repacking_schedule
from repro.workloads.adversarial import next_fit_lower_bound
from repro.workloads.random_workloads import poisson_workload

from ..conftest import item_lists


class TestScheduleBasics:
    def test_empty_instance(self):
        sched = build_repacking_schedule(ItemList([]))
        assert sched.total_usage_time == 0.0
        assert sched.migrations == 0

    def test_single_item(self):
        sched = build_repacking_schedule(ItemList([Item(0, 0.5, 0.0, 3.0)]))
        assert sched.total_usage_time == pytest.approx(3.0)
        assert sched.migrations == 0
        assert sched.exact

    def test_repacking_happens_when_profitable(self):
        """Three items where repacking merges survivors mid-flight."""
        items = ItemList(
            [
                Item(0, 0.6, 0.0, 2.0),
                Item(1, 0.6, 0.0, 4.0),
                Item(2, 0.6, 1.0, 4.0),   # conflicts with both
                Item(3, 0.4, 2.0, 4.0),   # after 0 leaves, joins someone
            ]
        )
        sched = build_repacking_schedule(items)
        opt = opt_total(items)
        assert sched.total_usage_time == pytest.approx(opt.lower)

    def test_nextfit_gadget_needs_no_migrations(self):
        """The §VIII construction has a static optimal layout."""
        sched = build_repacking_schedule(next_fit_lower_bound(8, 4.0))
        assert sched.migrations == 0

    def test_assignments_are_feasible(self):
        items = poisson_workload(40, seed=2, mu_target=5.0, arrival_rate=3.0)
        by_id = {it.item_id: it for it in items}
        sched = build_repacking_schedule(items)
        for iv in sched.intervals:
            placed = [iid for b in iv.bins for iid in b]
            assert len(placed) == len(set(placed))  # no duplicates
            for b in iv.bins:
                assert sum(by_id[i].size for i in b) <= items.capacity + 1e-9
            # exactly the active items are assigned
            active = {it.item_id for it in items.active_at(iv.start)}
            assert set(placed) == active


class TestScheduleMatchesOpt:
    @given(item_lists(max_items=16))
    @settings(max_examples=30, deadline=None)
    def test_schedule_attains_opt_when_exact(self, items):
        sched = build_repacking_schedule(items)
        opt = opt_total(items)
        # the schedule is a feasible adversary trajectory: ≥ OPT lower
        assert sched.total_usage_time >= opt.lower - 1e-6
        if sched.exact and opt.exact:
            assert sched.total_usage_time == pytest.approx(opt.lower, rel=1e-9)

    @given(item_lists(max_items=16))
    @settings(max_examples=20, deadline=None)
    def test_migrations_nonnegative_and_bounded(self, items):
        sched = build_repacking_schedule(items)
        assert sched.migrations >= 0
        # an item can migrate at most once per transition it survives
        def item_ids(iv):
            return {i for b in iv.bins for i in b}

        max_possible = sum(
            len(item_ids(a) & item_ids(c))
            for a, c in zip(sched.intervals, sched.intervals[1:])
        )
        assert sched.migrations <= max_possible
