"""Tests for repro.opt.bin_packing: static bin packing solvers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.opt.bin_packing import (
    BinCountBracket,
    exact_bin_count,
    first_fit_decreasing,
    first_fit_static,
    lower_bound_l1,
    lower_bound_l2,
)

sizes_strategy = st.lists(
    st.floats(0.01, 1.0, allow_nan=False).map(lambda x: round(x, 3)),
    min_size=0,
    max_size=14,
)


class TestFirstFitStatic:
    def test_packs_in_order(self):
        bins = first_fit_static([0.5, 0.6, 0.4])
        assert bins == [[0, 2], [1]]

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            first_fit_static([1.5])

    def test_respects_capacity_argument(self):
        bins = first_fit_static([1.5, 0.5], capacity=2.0)
        assert bins == [[0, 1]]


class TestFFD:
    def test_known_instance(self):
        # 0.6,0.6,0.4,0.4 → FFD: {0.6,0.4} × 2 = 2 bins
        assert first_fit_decreasing([0.4, 0.6, 0.4, 0.6]) == 2

    def test_empty(self):
        assert first_fit_decreasing([]) == 0

    def test_all_full_items(self):
        assert first_fit_decreasing([1.0] * 5) == 5


class TestLowerBounds:
    def test_l1_ceiling(self):
        assert lower_bound_l1([0.5, 0.5, 0.5]) == 2

    def test_l1_exact_multiple_no_roundup(self):
        # ten 0.1s sum to 0.9999999…: must give 1, not 2
        assert lower_bound_l1([0.1] * 10) == 1

    def test_l1_empty(self):
        assert lower_bound_l1([]) == 0

    def test_l2_dominates_l1_on_halves(self):
        # three items just over 1/2: L1 = 2 but L2 = 3
        sizes = [0.51, 0.52, 0.53]
        assert lower_bound_l1(sizes) == 2
        assert lower_bound_l2(sizes) == 3

    def test_l2_with_large_items(self):
        # 0.9-items can't pair with anything ≥ 0.2
        sizes = [0.9, 0.9, 0.2, 0.2]
        assert lower_bound_l2(sizes) >= 3

    @given(sizes_strategy)
    @settings(max_examples=150, deadline=None)
    def test_l2_geq_l1(self, sizes):
        assert lower_bound_l2(sizes) >= lower_bound_l1(sizes)


class TestExact:
    def test_trivial_cases(self):
        assert exact_bin_count([]) == BinCountBracket(0, 0)
        assert exact_bin_count([0.5]).value == 1

    def test_perfect_pairs(self):
        assert exact_bin_count([0.5, 0.5, 0.5, 0.5]).value == 2

    def test_ffd_suboptimal_instance(self):
        # classic: FFD uses 3 bins ([.4,.4], [.3,.3,.3], [.3]), OPT uses 2
        sizes = [0.4, 0.4, 0.3, 0.3, 0.3, 0.3]
        assert first_fit_decreasing(sizes) == 3
        assert exact_bin_count(sizes).value == 2

    def test_tricky_instance_exact_beats_ffd(self):
        # FFD: sorted 0.6,0.45,0.45,0.3,0.3,0.3,0.3 →
        #   [0.6,0.3], [0.45,0.45], [0.3,0.3,0.3] = 3 bins; OPT = 3 too.
        # Use a genuinely FFD-suboptimal instance instead:
        sizes = [0.51, 0.27, 0.27, 0.26, 0.23, 0.23, 0.23]
        ffd = first_fit_decreasing(sizes)
        opt = exact_bin_count(sizes).value
        assert opt <= ffd
        assert opt == 2

    def test_node_budget_returns_valid_bracket(self):
        sizes = [0.13 + 0.017 * i for i in range(18)]
        br = exact_bin_count(sizes, node_budget=50)
        assert br.lower <= br.upper
        full = exact_bin_count(sizes)
        assert br.lower <= full.lower and full.upper <= br.upper

    def test_bracket_value_raises_when_loose(self):
        with pytest.raises(ValueError):
            BinCountBracket(1, 2).value

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            exact_bin_count([1.2])

    @given(sizes_strategy)
    @settings(max_examples=80, deadline=None)
    def test_exact_between_bounds(self, sizes):
        br = exact_bin_count(sizes)
        assert br.exact
        assert lower_bound_l2(sizes) <= br.value <= first_fit_decreasing(sizes)

    @given(sizes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_exact_invariant_under_order(self, sizes):
        br1 = exact_bin_count(sizes)
        br2 = exact_bin_count(list(reversed(sizes)))
        assert br1.value == br2.value

    @given(sizes_strategy, st.floats(0.01, 0.99).map(lambda x: round(x, 3)))
    @settings(max_examples=50, deadline=None)
    def test_adding_item_never_decreases_opt(self, sizes, extra):
        base = exact_bin_count(sizes).value
        bigger = exact_bin_count(sizes + [extra]).value
        assert bigger >= base
