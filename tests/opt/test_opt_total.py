"""Tests for OPT_total — the repacking adversary."""

import pytest
from hypothesis import given, settings

from repro.algorithms import ALGORITHM_REGISTRY, FirstFit, make_algorithm
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.opt.lower_bounds import fractional_ceiling_bound, prop2_span_bound
from repro.opt.opt_total import competitive_ratio_bracket, opt_at_times, opt_total
from repro.workloads.adversarial import next_fit_lower_bound

from ..conftest import item_lists


class TestOptTotalExamples:
    def test_single_item(self):
        items = ItemList([Item(0, 0.5, 0.0, 3.0)])
        opt = opt_total(items)
        assert opt.exact
        assert opt.lower == pytest.approx(3.0)

    def test_two_conflicting_items(self):
        items = ItemList([Item(0, 0.8, 0.0, 2.0), Item(1, 0.8, 1.0, 3.0)])
        opt = opt_total(items)
        # [0,1): 1 bin, [1,2): 2 bins, [2,3): 1 bin
        assert opt.lower == pytest.approx(4.0)

    def test_paper_construction_value(self):
        # Section VIII: OPT_total = n/2 + µ (with the +1-1 interval detail:
        # [0,1): n/2+1 bins, [1,µ): 1 bin → n/2 + µ exactly)
        n, mu = 8, 4.0
        opt = opt_total(next_fit_lower_bound(n, mu))
        assert opt.exact
        assert opt.lower == pytest.approx(n / 2 + mu)

    def test_empty_instance(self):
        opt = opt_total(ItemList([]))
        assert opt.lower == 0.0 and opt.upper == 0.0

    def test_repacking_beats_online(self):
        """An instance where OPT (repacking) < any no-migration packing.

        Two size-0.6 items overlap briefly; a third 0.4-item weaves
        between them.  The adversary repacks at every instant.
        """
        items = ItemList(
            [
                Item(0, 0.6, 0.0, 2.0),
                Item(1, 0.6, 1.0, 4.0),
                Item(2, 0.4, 0.5, 3.5),
            ]
        )
        opt = opt_total(items)
        ff = run_packing(items, FirstFit())
        assert opt.lower <= ff.total_usage_time + 1e-9


class TestOptAtTimes:
    def test_counts(self):
        items = ItemList(
            [Item(0, 0.8, 0.0, 2.0), Item(1, 0.8, 1.0, 3.0), Item(2, 0.2, 1.0, 3.0)]
        )
        brackets = opt_at_times(items, [0.5, 1.5, 2.5, 10.0])
        assert [b.lower for b in brackets] == [1, 2, 1, 0]

    def test_empty_time(self):
        items = ItemList([Item(0, 0.5, 0.0, 1.0)])
        assert opt_at_times(items, [5.0])[0].lower == 0


class TestRatioBracket:
    def test_basic(self):
        items = ItemList([Item(0, 0.5, 0.0, 3.0)])
        opt = opt_total(items)
        lo, hi = competitive_ratio_bracket(3.0, opt)
        assert lo == pytest.approx(1.0)
        assert hi == pytest.approx(1.0)

    def test_zero_opt_rejected(self):
        opt = opt_total(ItemList([]))
        with pytest.raises(ValueError):
            competitive_ratio_bracket(1.0, opt)


class TestOptTotalProperties:
    @given(item_lists(max_items=18))
    @settings(max_examples=40, deadline=None)
    def test_opt_dominates_closed_form_bounds(self, items):
        opt = opt_total(items)
        assert opt.lower >= fractional_ceiling_bound(items) - 1e-7
        assert opt.lower >= prop2_span_bound(items) - 1e-7
        assert opt.upper >= opt.lower - 1e-9

    @given(item_lists(max_items=16))
    @settings(max_examples=30, deadline=None)
    def test_every_algorithm_at_least_opt(self, items):
        """No online algorithm can beat the repacking adversary."""
        opt = opt_total(items)
        for name in ALGORITHM_REGISTRY:
            result = run_packing(items, make_algorithm(name))
            assert result.total_usage_time >= opt.lower - 1e-6

    @given(item_lists(max_items=14))
    @settings(max_examples=25, deadline=None)
    def test_small_instances_solve_exactly(self, items):
        opt = opt_total(items)
        assert opt.exact
        assert opt.width <= 1e-12
