"""Tests for deferred dispatch."""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.deferral import run_deferred_first_fit
from repro.workloads.gaming import gaming_workload
from repro.workloads.random_workloads import poisson_workload

from .conftest import item_lists


def jobs(*tuples):
    return ItemList([Item(i, s, a, d) for i, (s, a, d) in enumerate(tuples)])


class TestZeroDelay:
    def test_equals_first_fit_exactly(self):
        for seed in (1, 2, 3):
            inst = poisson_workload(60, seed=seed, mu_target=6.0, arrival_rate=3.0)
            deferred = run_deferred_first_fit(inst, max_delay=0.0)
            ff = run_packing(inst, FirstFit())
            assert deferred.packing.item_bin == ff.item_bin
            assert deferred.total_usage_time == pytest.approx(ff.total_usage_time)
            assert deferred.delayed_jobs == 0

    @given(item_lists(max_items=25))
    @settings(max_examples=30, deadline=None)
    def test_zero_delay_property(self, items):
        deferred = run_deferred_first_fit(items, max_delay=0.0)
        ff = run_packing(items, FirstFit())
        assert deferred.packing.item_bin == ff.item_bin


class TestDeferralMechanics:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            run_deferred_first_fit(jobs((0.5, 0, 1)), max_delay=-1.0)

    def test_job_waits_for_freed_capacity(self):
        # two conflicting jobs; the second waits until the first leaves,
        # eliminating the overlap (bins are never reused after closing —
        # paper semantics — so it still opens a second bin, but the two
        # rentals no longer run concurrently)
        inst = jobs((0.8, 0.0, 1.0), (0.8, 0.5, 1.5))
        res = run_deferred_first_fit(inst, max_delay=1.0)
        assert res.waits[1] == pytest.approx(0.5)
        # each bin serves one job for its full duration: total 2.0 either
        # way in this two-job example (waiting helps when the freed bin
        # STAYS open — see the next test — or under quantised billing)
        assert res.total_usage_time == pytest.approx(2.0)
        # the second job runs for its full duration, shifted
        placed = next(it for it in res.packing.items if it.item_id == 1)
        assert placed.arrival == pytest.approx(1.0)
        assert placed.duration == pytest.approx(1.0)

    def test_waiting_reuses_still_open_bin(self):
        # a long co-tenant keeps bin 0 open, so the waiting job can join
        # it once the big blocker departs: genuinely one bin
        inst = jobs(
            (0.1, 0.0, 3.0),   # long small co-tenant keeps bin 0 open
            (0.8, 0.0, 1.0),   # blocker in bin 0
            (0.8, 0.5, 1.5),   # waits; joins bin 0 at t=1
        )
        res = run_deferred_first_fit(inst, max_delay=1.0)
        assert res.packing.num_bins == 1
        assert res.waits[2] == pytest.approx(0.5)

    def test_deadline_forces_new_bin(self):
        # the blocker lives far past the patience window
        inst = jobs((0.8, 0.0, 10.0), (0.8, 0.5, 1.5))
        res = run_deferred_first_fit(inst, max_delay=0.25)
        assert res.packing.num_bins == 2
        assert res.waits[1] == pytest.approx(0.25)

    def test_fifo_no_queue_jumping(self):
        # job 1 (big) queues; job 2 (small) would fit immediately but must
        # wait behind job 1
        inst = jobs(
            (0.9, 0.0, 10.0),   # blocker in bin 0
            (0.8, 1.0, 2.0),    # queues (doesn't fit bin 0)
            (0.05, 1.1, 2.1),   # fits bin 0, but FIFO says wait
        )
        res = run_deferred_first_fit(inst, max_delay=5.0)
        assert res.waits[2] > 0.0

    def test_waits_bounded_by_delay(self):
        inst = gaming_workload(150, seed=3, request_rate=8.0)
        res = run_deferred_first_fit(inst, max_delay=0.5)
        assert all(w <= 0.5 + 1e-9 for w in res.waits.values())

    def test_durations_preserved(self):
        inst = poisson_workload(50, seed=4, mu_target=5.0, arrival_rate=4.0)
        res = run_deferred_first_fit(inst, max_delay=1.0)
        original = {it.item_id: it.duration for it in inst}
        for it in res.packing.items:
            assert it.duration == pytest.approx(original[it.item_id])

    @given(item_lists(max_items=25))
    @settings(max_examples=30, deadline=None)
    def test_valid_packing_any_delay(self, items):
        res = run_deferred_first_fit(items, max_delay=0.7)
        assert set(res.packing.item_bin) == {it.item_id for it in items}
        for b in res.packing.bins:
            assert b.is_closed

    def test_patience_usually_saves_on_loaded_streams(self):
        inst = gaming_workload(250, seed=6, request_rate=8.0)
        base = run_deferred_first_fit(inst, max_delay=0.0).total_usage_time
        patient = run_deferred_first_fit(inst, max_delay=1.0).total_usage_time
        assert patient <= base * 1.02  # never much worse; usually better
