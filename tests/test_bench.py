"""Tests for the bench-trajectory harness (`repro.bench`).

The structural test keeps tier-1 fast by using the quick grid with the
Monte Carlo section disabled; the full baseline run is ``bench``-marked
and excluded from the default pytest invocation (select it with
``pytest -m bench``).
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    ALGORITHMS,
    QUICK_GRID,
    SERVICE_GRID,
    SERVICE_QUICK_GRID,
    SERVICE_ROUTER_QUICK_SHARDS,
    SERVICE_ROUTER_SHARDS,
    THROUGHPUT_GRID,
    VECTOR_ALGORITHMS,
    VECTOR_GRID,
    VECTOR_QUICK_GRID,
    run_bench,
)


#: the trace-replay cells: {scalar, vector} × {trace, poisson baseline}
TRACE_ROWS = 4

TRACE_PATHS = {
    "trace-replay",
    "poisson-baseline",
    "trace-replay-vector",
    "poisson-baseline-vector",
}


def expected_rows(scalar_grid, vector_grid):
    return (
        len(scalar_grid) * len(ALGORITHMS) * 2
        + len(vector_grid) * len(VECTOR_ALGORITHMS) * 2
        + TRACE_ROWS
    )


def test_quick_bench_structure(tmp_path):
    out = tmp_path / "bench.json"
    report = run_bench(quick=True, repeats=1, json_path=str(out), montecarlo=False)
    assert len(report.throughput) == expected_rows(QUICK_GRID, VECTOR_QUICK_GRID)
    for row in report.throughput:
        assert row["events_per_sec"] > 0
        assert row["path"] in {"default", "reference"} | TRACE_PATHS
    trace_rows = [r for r in report.throughput if r["path"] in TRACE_PATHS]
    assert {r["path"] for r in trace_rows} == TRACE_PATHS
    for row in trace_rows:
        assert row["instance"].startswith("trace-azure-")
    # two replay modes per grid cell, the migration-churn cell, three
    # WAL cells, four loopback cells, and the router cells (direct
    # baseline + quick shard counts)
    assert len(report.service) == (
        2 * len(SERVICE_QUICK_GRID) + 1 + 3 + 4
        + 1 + len(SERVICE_ROUTER_QUICK_SHARDS)
    )
    modes = {r["mode"] for r in report.service}
    assert modes == {
        "stream",
        "stream+metrics",
        "stream+migration",
        "stream+wal(never)",
        "stream+wal(interval)",
        "stream+wal(always)",
        "server-loopback",
        "server-loopback-highload",
        "server-loopback-binary",
        "server-loopback-pipelined",
        "router-loopback-direct",
        *(f"router-loopback-{s}shard" for s in SERVICE_ROUTER_QUICK_SHARDS),
    }
    for row in report.service:
        assert row["events_per_sec"] > 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == 2
    assert payload["meta"]["seed"] == 99
    assert len(payload["throughput"]) == len(report.throughput)
    assert len(payload["service"]) == len(report.service)


def test_quick_bench_includes_vector_cells():
    report = run_bench(quick=True, repeats=1, montecarlo=False)
    vector_rows = [
        r for r in report.throughput
        if r["algorithm"].startswith("vector-") and r["path"] not in TRACE_PATHS
    ]
    assert {r["algorithm"] for r in vector_rows} == set(VECTOR_ALGORITHMS)
    assert {r["path"] for r in vector_rows} == {"default", "reference"}


def test_only_selects_single_cell():
    """--only runs just the matching cells and nothing else."""
    report = run_bench(
        quick=True, repeats=1, montecarlo=True,
        only="throughput/n2000/first-fit/default",
    )
    assert [
        (r["instance"], r["algorithm"], r["path"]) for r in report.throughput
    ] == [("n2000", "first-fit", "default")]
    assert report.service == []
    assert report.montecarlo == {}  # "montecarlo" does not match either


def test_only_merges_into_existing_report(tmp_path):
    """Unmatched cells carry over from the report on disk."""
    out = tmp_path / "bench.json"
    stale = {
        "schema": 2,
        "meta": {},
        "throughput": [
            {"instance": "n2000", "algorithm": "first-fit",
             "path": "default", "seconds": 9999.0, "events_per_sec": 1},
            {"instance": "n9", "algorithm": "other",
             "path": "default", "seconds": 7.0, "events_per_sec": 2},
        ],
        "service": [
            {"instance": "n2000", "mode": "stream",
             "seconds": 5.0, "events_per_sec": 3},
        ],
        "montecarlo": {"config": "kept"},
    }
    out.write_text(json.dumps(stale))
    run_bench(
        quick=True, repeats=1, json_path=str(out), montecarlo=False,
        only="throughput/n2000/first-fit/default",
    )
    payload = json.loads(out.read_text())
    rows = {
        (r["instance"], r["algorithm"], r["path"]): r
        for r in payload["throughput"]
    }
    assert rows[("n2000", "first-fit", "default")]["seconds"] < 9999.0
    assert rows[("n9", "other", "default")]["seconds"] == 7.0
    assert payload["service"] == stale["service"]
    assert payload["montecarlo"] == {"config": "kept"}


def test_render_mentions_every_algorithm():
    report = run_bench(quick=True, repeats=1, montecarlo=False)
    text = report.render()
    for algo in ALGORITHMS + VECTOR_ALGORITHMS:
        assert algo in text


@pytest.mark.bench
def test_full_bench_baseline(tmp_path):
    """The committed-baseline configuration end to end (slow)."""
    out = tmp_path / "BENCH_perf.json"
    report = run_bench(quick=False, repeats=3, json_path=str(out))
    assert len(report.throughput) == expected_rows(THROUGHPUT_GRID, VECTOR_GRID)
    assert len(report.service) == (
        2 * len(SERVICE_GRID) + 1 + 3 + 4 + 1 + len(SERVICE_ROUTER_SHARDS)
    )
    assert report.montecarlo["identical"] is True
    # the fleet floor: the 1-shard router on the binary fast path costs
    # at most 15% over the same-run direct (router-less) baseline — the
    # transparent-proxy tax, measured interleaved to cancel drift
    router = {
        r["mode"]: r for r in report.service
        if r["mode"].startswith("router-loopback")
    }
    assert router["router-loopback-1shard"]["seconds"] <= (
        1.15 * router["router-loopback-direct"]["seconds"]
    )
    # the wire-protocol floor: the binary loopback cells must clear 10x
    # the JSON loopback cell measured in the same run
    loop = {
        r["mode"]: r for r in report.service
        if r["mode"].startswith("server-loopback")
    }
    json_cell = loop["server-loopback"]["events_per_sec"]
    assert loop["server-loopback-binary"]["events_per_sec"] >= 10 * json_cell
    assert loop["server-loopback-pipelined"]["events_per_sec"] >= 10 * json_cell
    # the durability floor: streaming with the WAL in the loop at the
    # default group-commit policy stays within 2.5x of the bare stream
    # cell (the budget was 2x when the stream cell ran ~270k ev/s; the
    # engine hot-path work lifted the WAL-less denominator ~20% while
    # the WAL cell itself is I/O-bound and held steady)
    stream = next(
        r for r in report.service
        if r["mode"] == "stream" and r["instance"] == SERVICE_GRID[0][0]
    )
    wal = next(
        r for r in report.service if r["mode"] == "stream+wal(interval)"
    )
    assert wal["seconds"] <= 2.5 * stream["seconds"]
    # the acceptance floor: first-fit on the 2000-job instance must beat
    # the seed engine's ~238k events/sec by at least 2x
    ff2k = next(
        r for r in report.throughput
        if r["instance"] == "n2000" and r["algorithm"] == "first-fit"
        and r["path"] == "default"
    )
    assert ff2k["events_per_sec"] >= 2 * 238_000
    # the unification floor: high-load vector first-fit must beat the
    # pre-unification driver's ~38k events/sec on the same cell
    vff = next(
        r for r in report.throughput
        if r["instance"] == "v20000-highload"
        and r["algorithm"] == "vector-first-fit" and r["path"] == "default"
    )
    assert vff["events_per_sec"] >= 2 * 38_000
