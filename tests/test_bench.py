"""Tests for the bench-trajectory harness (`repro.bench`).

The structural test keeps tier-1 fast by using the quick grid with the
Monte Carlo section disabled; the full baseline run is ``bench``-marked
and excluded from the default pytest invocation (select it with
``pytest -m bench``).
"""

from __future__ import annotations

import json

import pytest

from repro.bench import ALGORITHMS, QUICK_GRID, THROUGHPUT_GRID, run_bench


def test_quick_bench_structure(tmp_path):
    out = tmp_path / "bench.json"
    report = run_bench(quick=True, repeats=1, json_path=str(out), montecarlo=False)
    assert len(report.throughput) == len(QUICK_GRID) * len(ALGORITHMS) * 2
    for row in report.throughput:
        assert row["events_per_sec"] > 0
        assert row["path"] in ("default", "reference")
    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    assert payload["meta"]["seed"] == 99
    assert len(payload["throughput"]) == len(report.throughput)


def test_render_mentions_every_algorithm():
    report = run_bench(quick=True, repeats=1, montecarlo=False)
    text = report.render()
    for algo in ALGORITHMS:
        assert algo in text


@pytest.mark.bench
def test_full_bench_baseline(tmp_path):
    """The committed-baseline configuration end to end (slow)."""
    out = tmp_path / "BENCH_perf.json"
    report = run_bench(quick=False, repeats=3, json_path=str(out))
    assert len(report.throughput) == len(THROUGHPUT_GRID) * len(ALGORITHMS) * 2
    assert report.montecarlo["identical"] is True
    # the acceptance floor: first-fit on the 2000-job instance must beat
    # the seed engine's ~238k events/sec by at least 2x
    ff2k = next(
        r for r in report.throughput
        if r["instance"] == "n2000" and r["algorithm"] == "first-fit"
        and r["path"] == "default"
    )
    assert ff2k["events_per_sec"] >= 2 * 238_000
