"""Tests for the vector packing driver and algorithms."""

import pytest

from repro.multidim import (
    VECTOR_REGISTRY,
    VectorBestFit,
    VectorFirstFit,
    VectorItem,
    VectorItemList,
    VectorNextFit,
    VectorWorstFit,
    correlated_vector_workload,
    run_vector_packing,
    vector_workload,
)


def inst(items, dims=2):
    return VectorItemList(items, capacity=tuple(1.0 for _ in range(dims)))


class TestVectorFirstFit:
    def test_componentwise_feasibility_blocks(self):
        # item 2 fits dim 0 of bin 0 but not dim 1 → new bin
        items = inst(
            [
                VectorItem(0, (0.2, 0.9), 0.0, 10.0),
                VectorItem(1, (0.2, 0.2), 1.0, 5.0),
            ]
        )
        result = run_vector_packing(items, VectorFirstFit())
        assert result.num_bins == 2

    def test_packs_compatible_shapes(self):
        # complementary shapes share one bin
        items = inst(
            [
                VectorItem(0, (0.8, 0.1), 0.0, 5.0),
                VectorItem(1, (0.1, 0.8), 0.0, 5.0),
            ]
        )
        result = run_vector_packing(items, VectorFirstFit())
        assert result.num_bins == 1

    def test_single_dimension_matches_scalar_semantics(self):
        items = inst(
            [
                VectorItem(0, (0.6,), 0.0, 2.0),
                VectorItem(1, (0.5,), 0.5, 1.5),
                VectorItem(2, (0.4,), 1.0, 3.0),
            ],
            dims=1,
        )
        result = run_vector_packing(items, VectorFirstFit())
        assert result.num_bins == 2
        assert result.total_usage_time == pytest.approx(4.0)


class TestVectorBestWorstFit:
    def test_best_fit_prefers_fuller(self):
        items = inst(
            [
                VectorItem(0, (0.3, 0.3), 0.0, 10.0),
                VectorItem(1, (0.7, 0.1), 0.0, 10.0),  # fullness 0.7 → new bin?
                VectorItem(2, (0.1, 0.1), 1.0, 2.0),
            ]
        )
        result = run_vector_packing(items, VectorBestFit())
        # item 1 fits bin 0 (1.0, 0.4) exactly — max-norm fullness then 1.0
        assert result.item_bin[1] == 0
        # bin 0 now full in dim 0; item 2 (0.1,0.1) doesn't fit → new bin
        assert result.item_bin[2] == 1

    def test_worst_fit_prefers_emptier(self):
        items = inst(
            [
                VectorItem(0, (0.7, 0.7), 0.0, 10.0),
                VectorItem(1, (0.7, 0.7), 0.0, 10.0),  # conflicts → bin 1
                VectorItem(2, (0.1, 0.1), 1.0, 2.0),
            ]
        )
        result = run_vector_packing(items, VectorWorstFit())
        assert result.item_bin[2] == 0  # equal fullness → first found


class TestVectorNextFit:
    def test_single_available_bin(self):
        items = inst(
            [
                VectorItem(0, (0.6, 0.1), 0.0, 10.0),
                VectorItem(1, (0.6, 0.1), 0.0, 10.0),  # miss → bin 1, bin 0 retired
                VectorItem(2, (0.2, 0.2), 1.0, 2.0),   # bin 1 only
            ]
        )
        result = run_vector_packing(items, VectorNextFit())
        assert result.item_bin[2] == 1


class TestVectorDriverInvariants:
    @pytest.mark.parametrize("name", sorted(VECTOR_REGISTRY))
    def test_capacity_never_violated(self, name):
        items = vector_workload(80, seed=3, dimensions=3)
        result = run_vector_packing(items, VECTOR_REGISTRY[name]())

        # replay: no bin snapshot recorded, so recheck via level reconstruction
        for b in result.bins:
            assert b.is_open is False
        assert set(result.item_bin) == {it.item_id for it in items}

    @pytest.mark.parametrize("name", sorted(VECTOR_REGISTRY))
    def test_usage_at_least_lower_bound(self, name):
        items = vector_workload(60, seed=5, dimensions=2)
        result = run_vector_packing(items, VECTOR_REGISTRY[name]())
        assert result.total_usage_time >= items.lower_bound() - 1e-7
        assert result.ratio_vs_lower_bound() >= 1.0 - 1e-9

    def test_perfect_correlation_reduces_to_1d(self):
        """At correlation 1 both components are equal: vector FF must use
        exactly as many bins as scalar FF on the first component."""
        items = correlated_vector_workload(60, seed=7, correlation=1.0)
        result = run_vector_packing(items, VectorFirstFit())

        from repro.algorithms import FirstFit
        from repro.core.items import Item, ItemList
        from repro.core.packing import run_packing

        scalar = ItemList(
            [Item(it.item_id, it.sizes[0], it.arrival, it.departure) for it in items]
        )
        sres = run_packing(scalar, FirstFit())
        assert result.num_bins == sres.num_bins
        assert result.total_usage_time == pytest.approx(sres.total_usage_time)

    def test_more_dimensions_never_cheaper(self):
        """Adding an independent dimension can only increase cost (for FF
        on the same seed the 1-D projection is a relaxation)."""
        r1 = run_vector_packing(
            vector_workload(80, seed=9, dimensions=1), VectorFirstFit()
        )
        r3 = run_vector_packing(
            vector_workload(80, seed=9, dimensions=3), VectorFirstFit()
        )
        # not a theorem for arbitrary instances, but with the same seed the
        # first component stream is identical; statistically robust here
        assert r3.total_usage_time >= r1.total_usage_time - 1e-6
