"""Guardrails shared by both engines — identical checks, identical messages.

Since the unification, placement validation lives in the single driver
(:mod:`repro.core.driver`) and the capacity-mismatch check uses the same
format string in both entry points, so a scalar and a vector misuse must
fail with *literally identical* wording (modulo the embedded values).
"""

from __future__ import annotations

import pytest

from repro.algorithms import FirstFit
from repro.algorithms.base import PackingAlgorithm
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.multidim import (
    VectorAlgorithm,
    VectorItem,
    VectorItemList,
    run_vector_packing,
)
from repro.multidim.algorithms import VectorFirstFit

SCALAR_ITEMS = ItemList(
    [Item(0, 0.4, 0.0, 2.0), Item(1, 0.4, 1.0, 3.0)], capacity=2.0
)
VECTOR_ITEMS = VectorItemList(
    [VectorItem(0, (0.4, 0.2), 0.0, 2.0), VectorItem(1, (0.4, 0.2), 1.0, 3.0)],
    capacity=(2.0, 2.0),
)


class TestCapacityMismatch:
    def test_scalar_rejects_mismatched_item_list(self):
        with pytest.raises(ValueError, match="capacity mismatch") as exc:
            run_packing(SCALAR_ITEMS, FirstFit(), capacity=1.0)
        assert str(exc.value) == (
            "capacity mismatch: ItemList built with 2.0, run requested 1.0"
        )

    def test_vector_rejects_mismatched_item_list(self):
        with pytest.raises(ValueError, match="capacity mismatch") as exc:
            run_vector_packing(VECTOR_ITEMS, VectorFirstFit(), capacity=(1.0, 1.0))
        assert str(exc.value) == (
            "capacity mismatch: ItemList built with (2.0, 2.0), "
            "run requested (1.0, 1.0)"
        )

    def test_vector_rejects_wrong_dimension_count(self):
        with pytest.raises(ValueError, match="capacity mismatch"):
            run_vector_packing(VECTOR_ITEMS, VectorFirstFit(), capacity=(2.0,))

    def test_matching_capacity_is_accepted(self):
        run_packing(SCALAR_ITEMS, FirstFit(), capacity=2.0)
        run_vector_packing(VECTOR_ITEMS, VectorFirstFit(), capacity=(2.0, 2.0))


class _ScalarClosedBinChooser(PackingAlgorithm):
    """Returns the first *closed* bin it can find — a driver-level bug."""

    name = "rogue"

    def choose_bin(self, state, size):
        for b in state.bins:
            if b.is_closed:
                return b
        return None


class _VectorClosedBinChooser(VectorAlgorithm):
    name = "rogue"

    def choose_bin(self, state, sizes):
        for b in state.bins:
            if b.is_closed:
                return b
        return None


class TestClosedBinPlacement:
    """Both engines must reject a policy that targets a closed bin.

    The instances are shaped so bin 0 closes (its only item departs)
    before the last arrival, at which point the rogue policy returns the
    closed bin.  The rejection comes from the shared driver, so the
    message is identical across engines.
    """

    def test_scalar_driver_rejects_closed_bin(self):
        items = ItemList(
            [Item(0, 0.5, 0.0, 1.0), Item(1, 0.5, 2.0, 3.0)], capacity=1.0
        )
        with pytest.raises(RuntimeError) as exc:
            run_packing(items, _ScalarClosedBinChooser())
        assert str(exc.value) == "rogue chose closed bin 0"

    def test_vector_driver_rejects_closed_bin(self):
        items = VectorItemList(
            [VectorItem(0, (0.5,), 0.0, 1.0), VectorItem(1, (0.5,), 2.0, 3.0)],
            capacity=(1.0,),
        )
        with pytest.raises(RuntimeError) as exc:
            run_vector_packing(items, _VectorClosedBinChooser())
        assert str(exc.value) == "rogue chose closed bin 0"

    def test_state_place_rejects_closed_bin_directly(self):
        """The state-level backstop uses one message for both resources."""
        from repro.core.state import PackingState
        from repro.multidim.state import VectorPackingState

        s = PackingState(capacity=1.0)
        s.now = 0.0
        b = s.place(Item(0, 0.5, 0.0, 1.0), None)
        s.now = 1.0
        s.depart(Item(0, 0.5, 0.0, 1.0))
        with pytest.raises(ValueError, match="cannot place into closed bin 0"):
            s.place(Item(1, 0.5, 2.0, 3.0), b)

        v = VectorPackingState(capacity=(1.0,))
        v.now = 0.0
        vb = v.place(VectorItem(0, (0.5,), 0.0, 1.0), None)
        v.now = 1.0
        v.depart(VectorItem(0, (0.5,), 0.0, 1.0))
        with pytest.raises(ValueError, match="cannot place into closed bin 0"):
            v.place(VectorItem(1, (0.5,), 2.0, 3.0), vb)


class TestInfeasiblePlacement:
    """The shared driver validates feasibility before mutating state."""

    def test_scalar_driver_rejects_overfull_choice(self):
        class Rogue(PackingAlgorithm):
            name = "rogue"

            def choose_bin(self, state, size):
                bins = state.open_bins()
                return bins[0] if bins else None

        items = ItemList(
            [Item(0, 0.7, 0.0, 2.0), Item(1, 0.7, 1.0, 3.0)], capacity=1.0
        )
        with pytest.raises(RuntimeError, match="rogue chose bin 0 at level"):
            run_packing(items, Rogue())

    def test_vector_driver_rejects_overfull_choice(self):
        class Rogue(VectorAlgorithm):
            name = "rogue"

            def choose_bin(self, state, sizes):
                bins = state.open_bins()
                return bins[0] if bins else None

        items = VectorItemList(
            [VectorItem(0, (0.2, 0.7), 0.0, 2.0), VectorItem(1, (0.2, 0.7), 1.0, 3.0)],
            capacity=(1.0, 1.0),
        )
        with pytest.raises(RuntimeError, match="rogue chose bin 0 at level"):
            run_vector_packing(items, Rogue())
