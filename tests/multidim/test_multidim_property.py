"""Property-based tests for the multi-dimensional extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.multidim import (
    VECTOR_REGISTRY,
    VectorItem,
    VectorItemList,
    run_vector_packing,
)


@st.composite
def vector_instances(draw, max_items=25, max_dims=3):
    dims = draw(st.integers(1, max_dims))
    n = draw(st.integers(1, max_items))
    items = []
    for i in range(n):
        arrival = round(draw(st.floats(0.0, 30.0, allow_nan=False)), 2)
        duration = round(draw(st.floats(1.0, 8.0, allow_nan=False)), 2)
        sizes = tuple(
            round(draw(st.floats(0.01, 1.0, allow_nan=False)), 3) for _ in range(dims)
        )
        items.append(VectorItem(i, sizes, arrival, arrival + duration))
    return VectorItemList(items, capacity=tuple(1.0 for _ in range(dims)))


class TestVectorProperties:
    @given(vector_instances())
    @settings(max_examples=50, deadline=None)
    def test_every_policy_produces_valid_packing(self, items):
        for name, factory in VECTOR_REGISTRY.items():
            result = run_vector_packing(items, factory())
            assert set(result.item_bin) == {it.item_id for it in items}
            for b in result.bins:
                assert not b.is_open

    @given(vector_instances())
    @settings(max_examples=50, deadline=None)
    def test_usage_at_least_lower_bound(self, items):
        for name, factory in VECTOR_REGISTRY.items():
            result = run_vector_packing(items, factory())
            assert result.total_usage_time >= items.lower_bound() - 1e-6

    @given(vector_instances())
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_violated_in_any_dimension(self, items):
        """Replay each bin's level per dimension from its items."""
        result = run_vector_packing(items, VECTOR_REGISTRY["vector-first-fit"]())
        for b in result.bins:
            events = []
            for it in b.all_items:
                events.append((it.arrival, 1, it.sizes))
                events.append((it.departure, 0, it.sizes))
            events.sort(key=lambda e: (e[0], e[1]))
            levels = [0.0] * items.dimensions
            for _, kind, sizes in events:
                for d, s in enumerate(sizes):
                    levels[d] += s if kind == 1 else -s
                    assert levels[d] <= items.capacity[d] + 1e-9

    @given(vector_instances(max_dims=1))
    @settings(max_examples=30, deadline=None)
    def test_one_dimension_matches_scalar_first_fit(self, items):
        """D=1 vector FF must coincide with the scalar driver."""
        from repro.algorithms import FirstFit
        from repro.core.items import Item, ItemList
        from repro.core.packing import run_packing
        from repro.multidim import VectorFirstFit

        vec = run_vector_packing(items, VectorFirstFit())
        scalar = run_packing(
            ItemList(
                Item(it.item_id, it.sizes[0], it.arrival, it.departure)
                for it in items
            ),
            FirstFit(),
        )
        assert vec.item_bin == scalar.item_bin
        assert vec.total_usage_time == pytest.approx(scalar.total_usage_time)

    @given(vector_instances())
    @settings(max_examples=30, deadline=None)
    def test_vector_first_fit_is_any_fit(self, items):
        """Vector FF opens a bin only when no open bin fits."""
        from repro.multidim.algorithms import VectorFirstFit

        opened_badly = []

        class Watch(VectorFirstFit):
            def choose_bin(self, state, sizes):
                target = super().choose_bin(state, sizes)
                if target is None and state.open_bins_fitting(sizes):
                    opened_badly.append(sizes)
                return target

        run_vector_packing(items, Watch())
        assert opened_badly == []
