"""The §VIII gadget carries over to the vector setting.

Section IX leaves multi-dimensional MinUsageTime DBP open; one thing
that transfers immediately is the Next Fit lower bound: embedding the
pair construction in dimension 0 with a neutral second dimension forces
vector Next Fit to the same nµ cost, so the 2µ separation from (vector)
First Fit is inherited by every multi-dimensional generalisation.
"""

import pytest

from repro.multidim import (
    VectorFirstFit,
    VectorItem,
    VectorItemList,
    VectorNextFit,
    run_vector_packing,
)


def vector_nextfit_gadget(n: int, mu: float, neutral: float = 0.01) -> VectorItemList:
    """The §VIII pair construction lifted to 2-D."""
    items = []
    for i in range(n):
        items.append(VectorItem(2 * i, (0.5, neutral), 0.0, 1.0))
        items.append(VectorItem(2 * i + 1, (1.0 / n, neutral), 0.0, mu))
    return VectorItemList(items, capacity=(1.0, 1.0))


class TestVectorGadget:
    def test_vector_next_fit_pays_n_mu(self):
        n, mu = 8, 4.0
        result = run_vector_packing(vector_nextfit_gadget(n, mu), VectorNextFit())
        assert result.num_bins == n
        assert result.total_usage_time == pytest.approx(n * mu)

    def test_vector_first_fit_consolidates(self):
        n, mu = 8, 4.0
        inst = vector_nextfit_gadget(n, mu)
        nf = run_vector_packing(inst, VectorNextFit())
        ff = run_vector_packing(inst, VectorFirstFit())
        assert ff.total_usage_time < 0.5 * nf.total_usage_time

    def test_separation_grows_with_n(self):
        mu = 4.0
        gaps = []
        for n in (8, 32):
            inst = vector_nextfit_gadget(n, mu)
            nf = run_vector_packing(inst, VectorNextFit()).total_usage_time
            ff = run_vector_packing(inst, VectorFirstFit()).total_usage_time
            gaps.append(nf / ff)
        assert gaps[1] > gaps[0]

    def test_second_dimension_can_break_the_gadget(self):
        """If the neutral dimension is NOT neutral (tails are heavy
        there), the pairs conflict in dim 1 and even the optimum needs
        n bins — the gadget's separation collapses.  This is exactly the
        kind of subtlety Section IX's open problem is about."""
        n, mu = 8, 4.0
        heavy = vector_nextfit_gadget(n, mu, neutral=0.6)
        nf = run_vector_packing(heavy, VectorNextFit())
        ff = run_vector_packing(heavy, VectorFirstFit())
        # tails (0.6 in dim 1) cannot share bins: both algorithms need
        # n long-lived bins and the separation disappears
        assert nf.total_usage_time == pytest.approx(ff.total_usage_time, rel=0.2)
