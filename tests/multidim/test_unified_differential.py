"""Differential tests pinning the engine unification.

Three independent nets, together guaranteeing the refactor changed *no*
packing anywhere:

1. **Frozen corpus**: ``tests/data/multidim/*.json`` stores instances
   and the exact packings (item→bin map, float-exact usage time, bin
   count) the pre-unification vector engine produced for every
   registered policy.  The unified engine must reproduce them bit for
   bit on the default path, the ``indexed=False`` reference path, and
   with the tree forced on from the first bin.
2. **Random differential**: on fresh seeded workloads the indexed and
   reference paths must agree exactly, in the low-load regime (tree
   never activates), the high-load regime (tree activates mid-run), and
   with forced activation.
3. **Scalar identity**: every 1-dimensional vector run must coincide
   exactly with the scalar engine under the corresponding policy —
   both engines are the same driver over the same comparisons, so a
   D=1 vector instance is literally a scalar instance.

Plus a structural test: :mod:`repro.multidim.packing` must contain no
event loop of its own — the unified driver is the only one.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path

import pytest

import repro.core.state as state_mod
import repro.multidim.packing as vector_packing_mod
from repro.algorithms import make_algorithm
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.multidim import (
    VECTOR_REGISTRY,
    VectorItem,
    VectorItemList,
    make_vector_algorithm,
    run_vector_packing,
    vector_workload,
)

DATA = Path(__file__).parent.parent / "data" / "multidim"
CORPUS = sorted(DATA.glob("*.json"))
ALL_VECTOR = sorted(VECTOR_REGISTRY)

#: vector policy → the scalar policy it must coincide with at D=1
SCALAR_TWIN = {
    "vector-first-fit": "first-fit",
    "vector-best-fit": "best-fit",
    "vector-worst-fit": "worst-fit",
    "vector-next-fit": "next-fit",
}


def load_corpus(path):
    with open(path) as f:
        data = json.load(f)
    items = VectorItemList(
        [
            VectorItem(d["item_id"], tuple(d["sizes"]), d["arrival"], d["departure"])
            for d in data["items"]
        ],
        capacity=tuple(data["capacity"]),
    )
    return items, data["expected"]


def assert_matches_expected(items, algo_name, expected, indexed):
    res = run_vector_packing(items, make_vector_algorithm(algo_name), indexed=indexed)
    got = {str(k): v for k, v in res.item_bin.items()}
    assert got == expected["item_bin"], f"{algo_name}: placements diverged"
    # identical placements make identical bins, so the cost matches to
    # the last bit — no approx
    assert res.total_usage_time == expected["total_usage_time"]
    assert res.num_bins == expected["num_bins"]


def assert_identical_paths(items, algo_name):
    fast = run_vector_packing(items, make_vector_algorithm(algo_name), indexed=True)
    ref = run_vector_packing(items, make_vector_algorithm(algo_name), indexed=False)
    assert fast.item_bin == ref.item_bin, f"{algo_name}: placements diverged"
    assert fast.total_usage_time == ref.total_usage_time
    assert fast.num_bins == ref.num_bins


@pytest.fixture
def forced_tree(monkeypatch):
    """Make the indexed path build and query the tree from bin one.

    The threshold is the *shared* module global in ``repro.core.state``;
    patching it steers the vector engine too — itself a regression test
    for the unification.
    """
    monkeypatch.setattr(state_mod, "INDEX_THRESHOLD", 1)


@pytest.mark.parametrize("trace", CORPUS, ids=lambda p: p.stem)
class TestFrozenCorpus:
    def test_default_path(self, trace):
        items, expected = load_corpus(trace)
        for algo_name, exp in expected.items():
            assert_matches_expected(items, algo_name, exp, indexed=True)

    def test_reference_path(self, trace):
        items, expected = load_corpus(trace)
        for algo_name, exp in expected.items():
            assert_matches_expected(items, algo_name, exp, indexed=False)

    def test_forced_tree(self, trace, forced_tree):
        items, expected = load_corpus(trace)
        for algo_name, exp in expected.items():
            assert_matches_expected(items, algo_name, exp, indexed=True)


class TestRandomDifferential:
    @pytest.mark.parametrize("algo_name", ALL_VECTOR)
    def test_low_load(self, algo_name):
        # a handful of open bins: the adaptive index stays on the scans
        items = vector_workload(500, seed=5, dimensions=2, arrival_rate=3.0)
        assert_identical_paths(items, algo_name)

    @pytest.mark.parametrize("algo_name", ALL_VECTOR)
    def test_high_load_activates_tree(self, algo_name):
        # a few hundred concurrently open bins: crosses INDEX_THRESHOLD
        # so the vector tree serves first-fit queries mid-run
        items = vector_workload(900, seed=17, dimensions=2, arrival_rate=300.0)
        assert_identical_paths(items, algo_name)

    @pytest.mark.parametrize("algo_name", ALL_VECTOR)
    def test_forced_tree(self, algo_name, forced_tree):
        items = vector_workload(300, seed=29, dimensions=3, arrival_rate=8.0)
        assert_identical_paths(items, algo_name)


class TestScalarIdentity:
    @pytest.mark.parametrize("vec_name", sorted(SCALAR_TWIN))
    def test_one_dimension_equals_scalar_engine(self, vec_name):
        vitems = vector_workload(400, seed=41, dimensions=1, arrival_rate=6.0)
        sitems = ItemList(
            Item(it.item_id, it.sizes[0], it.arrival, it.departure) for it in vitems
        )
        vec = run_vector_packing(vitems, make_vector_algorithm(vec_name))
        sca = run_packing(sitems, make_algorithm(SCALAR_TWIN[vec_name]))
        assert vec.item_bin == sca.item_bin
        assert vec.total_usage_time == sca.total_usage_time
        assert vec.num_bins == sca.num_bins


def test_vector_packing_module_has_no_event_loop():
    """The tentpole's structural guarantee: one driver, not two.

    ``repro.multidim.packing`` must delegate to the shared
    ``run_events`` and contain no event iteration of its own.
    """
    source = inspect.getsource(vector_packing_mod)
    assert "run_events(" in source
    assert "event_tuples" not in source
    assert "event_sequence" not in source
    assert "EventKind.ARRIVE" not in source
    assert "heapq" not in source


def test_open_set_is_ordered_dict_with_o1_close():
    """The open set must be the shared dict: O(1) close, opening order."""
    items = vector_workload(200, seed=3, dimensions=2, arrival_rate=50.0)
    seen_types = []

    def watch(event, state):
        seen_types.append(type(state._open))
        opened = [b.index for b in state.open_bins()]
        assert opened == sorted(opened)  # opening order survives closes

    run_vector_packing(items, make_vector_algorithm("vector-first-fit"), observers=[watch])
    assert set(seen_types) == {dict}
