"""Tests for vector items and instances."""

import pytest

from repro.multidim.items import VectorItem, VectorItemList


class TestVectorItem:
    def test_basic(self):
        it = VectorItem(0, (0.5, 0.3), 0.0, 2.0)
        assert it.dimensions == 2
        assert it.duration == 2.0
        assert it.max_size == 0.5
        assert it.time_space_demand(0) == pytest.approx(1.0)
        assert it.time_space_demand(1) == pytest.approx(0.6)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            VectorItem(0, (0.0, 0.0), 0.0, 1.0)

    def test_one_zero_component_allowed(self):
        it = VectorItem(0, (0.5, 0.0), 0.0, 1.0)
        assert it.max_size == 0.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VectorItem(0, (0.5, -0.1), 0.0, 1.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            VectorItem(0, (0.5,), 2.0, 2.0)


class TestVectorItemList:
    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorItemList([VectorItem(0, (0.5,), 0, 1)], capacity=(1.0, 1.0))

    def test_capacity_violation_rejected(self):
        with pytest.raises(ValueError):
            VectorItemList([VectorItem(0, (0.5, 1.5), 0, 1)], capacity=(1.0, 1.0))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            VectorItemList(
                [VectorItem(0, (0.5,), 0, 1), VectorItem(0, (0.5,), 0, 1)],
                capacity=(1.0,),
            )

    def test_mu_and_span(self):
        items = VectorItemList(
            [VectorItem(0, (0.5, 0.1), 0.0, 2.0), VectorItem(1, (0.1, 0.5), 1.0, 5.0)],
            capacity=(1.0, 1.0),
        )
        assert items.mu == 2.0
        assert items.span == 5.0

    def test_lower_bound_uses_binding_resource(self):
        # dim 1 is the heavy one: TS_1 = 0.9·10 = 9 > span = 10? no, 9 < 10
        items = VectorItemList(
            [VectorItem(0, (0.1, 0.9), 0.0, 10.0), VectorItem(1, (0.1, 0.9), 0.0, 10.0)],
            capacity=(1.0, 1.0),
        )
        # TS_1 = 18, span = 10 → lower bound 18
        assert items.lower_bound() == pytest.approx(18.0)

    def test_lower_bound_span_dominates_when_light(self):
        items = VectorItemList(
            [VectorItem(0, (0.1, 0.1), 0.0, 10.0)], capacity=(1.0, 1.0)
        )
        assert items.lower_bound() == pytest.approx(10.0)
