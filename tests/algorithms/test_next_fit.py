"""Tests for Next Fit (Section VIII semantics)."""

import pytest

from repro.algorithms import FirstFit, NextFit
from repro.core.items import Item
from repro.core.packing import run_packing
from repro.workloads.adversarial import next_fit_lower_bound


class TestNextFitSemantics:
    def test_single_available_bin(self):
        items = [
            Item(0, 0.6, 0.0, 10.0),  # bin 0 (available)
            Item(1, 0.6, 0.0, 10.0),  # misses bin 0 → bin 1, bin 0 retired
            Item(2, 0.2, 1.0, 2.0),   # fits bin 0 but it's unavailable → bin 1
        ]
        result = run_packing(items, NextFit())
        assert result.item_bin == {0: 0, 1: 1, 2: 1}

    def test_retired_bins_never_reused(self):
        items = [
            Item(0, 0.9, 0.0, 10.0),   # bin 0
            Item(1, 0.9, 0.0, 10.0),   # bin 1; bin 0 retired
            Item(2, 0.9, 0.0, 10.0),   # bin 2; bin 1 retired
            Item(3, 0.05, 1.0, 2.0),   # fits all, only bin 2 available
        ]
        result = run_packing(items, NextFit())
        assert result.item_bin[3] == 2

    def test_closed_available_bin_triggers_new(self):
        items = [
            Item(0, 0.5, 0.0, 1.0),   # bin 0 opens, closes at 1
            Item(1, 0.1, 2.0, 3.0),   # bin 0 closed → new bin 1
        ]
        result = run_packing(items, NextFit())
        assert result.item_bin[1] == 1
        assert result.num_bins == 2

    def test_paper_construction_exact_cost(self):
        """Section VIII: NF pays exactly nµ on the pair construction."""
        for n, mu in [(4, 2.0), (8, 4.0), (16, 3.0)]:
            inst = next_fit_lower_bound(n, mu)
            result = run_packing(inst, NextFit())
            assert result.num_bins == n
            assert result.total_usage_time == pytest.approx(n * mu)

    def test_ff_beats_nf_on_construction(self):
        inst = next_fit_lower_bound(16, 8.0)
        nf = run_packing(inst, NextFit())
        ff = run_packing(inst, FirstFit())
        assert ff.total_usage_time < nf.total_usage_time

    def test_nf_is_not_any_fit(self):
        """NF opens a new bin even when a (retired) open bin could fit."""
        items = [
            Item(0, 0.6, 0.0, 10.0),
            Item(1, 0.6, 0.0, 10.0),  # bin 1; bin 0 retired but open
            Item(2, 0.6, 1.0, 2.0),   # misses bin 1 → bin 2 (bin0 would fit? no: 0.6+0.6>1)
            Item(3, 0.3, 1.5, 2.5),   # fits bin 0 (0.6) but NF uses available bin 2
        ]
        result = run_packing(items, NextFit())
        assert result.item_bin[3] == 2
