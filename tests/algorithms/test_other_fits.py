"""Tests for Worst Fit, Last Fit, Random Fit."""

import pytest
from hypothesis import given, settings

from repro.algorithms import LastFit, RandomFit, WorstFit
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing

from ..conftest import item_lists


class TestWorstFit:
    def test_prefers_emptiest(self):
        items = [
            Item(0, 0.7, 0.0, 10.0),
            Item(1, 0.4, 0.0, 10.0),  # bin 1 (doesn't fit bin 0)
            Item(2, 0.2, 1.0, 2.0),   # fits both → WF takes bin 1 (emptier)
        ]
        result = run_packing(items, WorstFit())
        assert result.item_bin[2] == 1

    def test_tie_breaks_to_earliest(self):
        items = [
            Item(0, 0.6, 0.0, 10.0),
            Item(1, 0.6, 0.0, 10.0),
            Item(2, 0.2, 1.0, 2.0),
        ]
        result = run_packing(items, WorstFit())
        assert result.item_bin[2] == 0


class TestLastFit:
    def test_prefers_latest_opened(self):
        items = [
            Item(0, 0.5, 0.0, 10.0),
            Item(1, 0.6, 0.0, 10.0),  # bin 1
            Item(2, 0.2, 1.0, 2.0),   # fits both → LF takes bin 1
        ]
        result = run_packing(items, LastFit())
        assert result.item_bin[2] == 1

    def test_skips_infeasible_latest(self):
        items = [
            Item(0, 0.5, 0.0, 10.0),
            Item(1, 0.95, 0.0, 10.0),  # bin 1 nearly full
            Item(2, 0.2, 1.0, 2.0),    # doesn't fit bin 1 → bin 0
        ]
        result = run_packing(items, LastFit())
        assert result.item_bin[2] == 0


class TestRandomFit:
    def test_deterministic_given_seed(self):
        items = ItemList(
            [Item(i, 0.2, (i % 5) * 0.1, (i % 5) * 0.1 + 2) for i in range(30)]
        )
        r1 = run_packing(items, RandomFit(seed=7))
        r2 = run_packing(items, RandomFit(seed=7))
        assert r1.item_bin == r2.item_bin

    def test_different_seeds_can_differ(self):
        # two half-full long-lived bins + a stream of tiny items, each of
        # which has a genuine two-way choice
        items = ItemList(
            [Item(0, 0.6, 0.0, 100.0), Item(1, 0.6, 0.0, 100.0)]
            + [Item(2 + i, 0.02, 1.0 + i, 2.0 + i) for i in range(10)]
        )
        outcomes = {
            tuple(sorted(run_packing(items, RandomFit(seed=s)).item_bin.items()))
            for s in range(8)
        }
        assert len(outcomes) > 1

    def test_reset_restores_stream(self):
        """reset() must re-seed so back-to-back runs agree."""
        items = ItemList([Item(i, 0.2, 0.0, 2.0) for i in range(20)])
        algo = RandomFit(seed=3)
        r1 = run_packing(items, algo)
        r2 = run_packing(items, algo)  # same object, driver resets it
        assert r1.item_bin == r2.item_bin

    @given(item_lists(max_items=25))
    @settings(max_examples=40, deadline=None)
    def test_random_fit_is_any_fit(self, items):
        """Random Fit never opens a bin while one fits."""
        failures = []

        class Watch(RandomFit):
            def choose_bin(self, state, size):
                target = super().choose_bin(state, size)
                if target is None and state.open_bins_fitting(size):
                    failures.append(size)
                return target

        run_packing(items, Watch(seed=1))
        assert failures == []
