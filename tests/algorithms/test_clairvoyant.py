"""Tests for the clairvoyant (known-departure) policies."""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    CLAIRVOYANT_REGISTRY,
    DepartureAlignedFit,
    DurationClassifiedFit,
    FirstFit,
)
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing

from ..conftest import item_lists


class TestClairvoyantInterface:
    def test_choose_bin_disabled(self):
        from repro.core.state import PackingState

        algo = DepartureAlignedFit()
        with pytest.raises(TypeError, match="clairvoyant"):
            algo.choose_bin(PackingState(), 0.5)

    def test_registry_entries_are_clairvoyant(self):
        for name, factory in CLAIRVOYANT_REGISTRY.items():
            assert getattr(factory(), "clairvoyant", False), name


class TestDepartureAlignedFit:
    def test_prefers_bin_that_outlives_item(self):
        items = ItemList(
            [
                Item(0, 0.5, 0.0, 2.0),    # bin 0, closes at 2
                Item(1, 0.5, 0.0, 10.0),   # bin 1, closes at 10
                Item(2, 0.3, 1.0, 5.0),    # extending bin 0 costs 3; bin 1: 0
            ]
        )
        result = run_packing(items, DepartureAlignedFit())
        assert result.item_bin[2] == 1

    def test_minimises_extension_when_all_extend(self):
        items = ItemList(
            [
                Item(0, 0.5, 0.0, 2.0),    # bin 0
                Item(1, 0.5, 0.0, 4.0),    # bin 1
                Item(2, 0.3, 1.0, 5.0),    # ext: bin0 = 3, bin1 = 1 → bin 1
            ]
        )
        result = run_packing(items, DepartureAlignedFit())
        assert result.item_bin[2] == 1

    def test_any_fit_behaviour(self):
        """Opens a new bin only when nothing fits."""
        items = ItemList(
            [Item(0, 0.8, 0.0, 4.0), Item(1, 0.1, 1.0, 2.0), Item(2, 0.9, 1.5, 3.0)]
        )
        result = run_packing(items, DepartureAlignedFit())
        assert result.item_bin[1] == 0  # fits → no new bin
        assert result.item_bin[2] == 1  # doesn't fit → new bin

    def test_beats_first_fit_on_misaligned_instance(self):
        # FF mixes a long item into a short bin, paying the extension;
        # the clairvoyant policy aligns departures instead
        items = ItemList(
            [
                Item(0, 0.5, 0.0, 1.5),   # bin 0 (short-lived)
                Item(1, 0.6, 0.0, 10.0),  # bin 1 (long-lived; can't join bin 0)
                Item(2, 0.4, 0.5, 10.0),  # FF → bin 0 (extends it to 10);
                                          # DA → bin 1 (zero extension)
            ]
        )
        ff = run_packing(items, FirstFit())
        da = run_packing(items, DepartureAlignedFit())
        assert da.total_usage_time < ff.total_usage_time

    @given(item_lists(max_items=25))
    @settings(max_examples=40, deadline=None)
    def test_valid_packing_on_random_instances(self, items):
        result = run_packing(items, DepartureAlignedFit())
        assert set(result.item_bin) == {it.item_id for it in items}
        assert result.total_usage_time >= items.span - 1e-7


class TestDurationClassifiedFit:
    def test_class_of(self):
        algo = DurationClassifiedFit(base=2.0)
        assert algo.class_of(1.0) == 0
        assert algo.class_of(1.9) == 0
        assert algo.class_of(2.0) == 1
        assert algo.class_of(7.9) == 2

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            DurationClassifiedFit(base=1.0)

    def test_duration_classes_never_mix(self):
        items = ItemList(
            [
                Item(0, 0.2, 0.0, 1.5),   # class 0 (duration 1.5)
                Item(1, 0.2, 0.0, 8.0),   # class 3 → separate bin
                Item(2, 0.2, 0.5, 1.9),   # class 0 → joins bin 0
            ]
        )
        result = run_packing(items, DurationClassifiedFit())
        assert result.item_bin[0] == result.item_bin[2]
        assert result.item_bin[1] != result.item_bin[0]

    def test_short_job_cannot_pin_long_server(self):
        """The busy-time idea: a short job never keeps a long-class bin
        alive because it can't enter one."""
        items = ItemList(
            [
                Item(0, 0.5, 0.0, 8.0),   # long class
                Item(1, 0.1, 7.5, 8.6),   # short; FF would reuse bin 0
            ]
        )
        dc = run_packing(items, DurationClassifiedFit())
        assert dc.item_bin[1] != dc.item_bin[0]

    @given(item_lists(max_items=25))
    @settings(max_examples=40, deadline=None)
    def test_valid_packing_on_random_instances(self, items):
        result = run_packing(items, DurationClassifiedFit())
        assert set(result.item_bin) == {it.item_id for it in items}
