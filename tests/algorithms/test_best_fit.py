"""Tests for Best Fit and its contrast with First Fit."""

import pytest

from repro.algorithms import BestFit, FirstFit
from repro.core.items import Item
from repro.core.packing import run_packing
from repro.workloads.adversarial import best_fit_staircase


class TestBestFitPlacement:
    def test_prefers_fullest_bin(self):
        items = [
            Item(0, 0.5, 0.0, 10.0),  # bin 0
            Item(1, 0.7, 0.0, 10.0),  # bin 1 (fuller)
            Item(2, 0.2, 1.0, 2.0),   # fits both; BF takes bin 1
        ]
        result = run_packing(items, BestFit())
        assert result.item_bin[2] == 1

    def test_tie_breaks_to_earliest(self):
        items = [
            Item(0, 0.7, 0.0, 10.0),  # bin 0
            Item(1, 0.7, 0.0, 10.0),  # bin 1 (same level)
            Item(2, 0.2, 1.0, 2.0),   # tie between bins → earliest (bin 0)
        ]
        result = run_packing(items, BestFit())
        assert result.item_bin[2] == 0

    def test_fuller_later_bin_beats_earlier(self):
        items = [
            Item(0, 0.5, 0.0, 10.0),  # bin 0
            Item(1, 0.6, 0.0, 10.0),  # bin 1 (fuller)
            Item(2, 0.1, 0.5, 10.0),  # BF → bin 1 (0.6 > 0.5)
            Item(3, 0.2, 1.0, 2.0),   # BF → bin 1 again (0.7 > 0.5)
        ]
        result = run_packing(items, BestFit())
        assert result.item_bin[2] == 1
        assert result.item_bin[3] == 1

    def test_scatters_on_staircase_while_ff_consolidates(self):
        inst = best_fit_staircase(20, 8.0)
        bf = run_packing(inst, BestFit())
        ff = run_packing(inst, FirstFit())
        assert bf.total_usage_time > 1.5 * ff.total_usage_time

    def test_exact_topup_choice(self):
        # BF chooses the bin it fills exactly over a merely-fuller bin it
        # cannot enter
        items = [
            Item(0, 0.95, 0.0, 10.0),  # bin 0: fullest but can't take 0.2
            Item(1, 0.8, 0.0, 10.0),   # bin 1
            Item(2, 0.2, 1.0, 2.0),    # fits only bin 1
        ]
        result = run_packing(items, BestFit())
        assert result.item_bin[2] == 1
