"""Tests for size-classified (hybrid) algorithms."""

import pytest

from repro.algorithms import ClassifiedNextFit, FirstFit, HybridFirstFit
from repro.algorithms.classified import ClassifiedAlgorithm
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing


class TestClassification:
    def test_class_of_thresholds(self):
        algo = HybridFirstFit((1 / 3, 1 / 2))
        assert algo.class_of(0.1) == 0
        assert algo.class_of(1 / 3) == 0  # boundary goes to the lower class
        assert algo.class_of(0.4) == 1
        assert algo.class_of(0.5) == 1
        assert algo.class_of(0.9) == 2

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            HybridFirstFit((0.5, 0.5))
        with pytest.raises(ValueError):
            HybridFirstFit((0.5, 0.3))
        with pytest.raises(ValueError):
            HybridFirstFit((0.0,))
        with pytest.raises(ValueError):
            HybridFirstFit((1.0,))

    def test_no_thresholds_degenerates_to_first_fit(self):
        items = ItemList(
            [Item(i, 0.15 + 0.1 * (i % 7), (i % 4) * 0.5, (i % 4) * 0.5 + 2) for i in range(30)]
        )
        hff = run_packing(items, HybridFirstFit(()))
        ff = run_packing(items, FirstFit())
        assert hff.item_bin == ff.item_bin


class TestHybridFirstFit:
    def test_classes_never_share_bins(self):
        items = ItemList(
            [
                Item(0, 0.1, 0.0, 10.0),  # small class
                Item(1, 0.6, 0.0, 10.0),  # large class → separate bin
                Item(2, 0.1, 1.0, 2.0),   # small → joins item 0's bin
            ]
        )
        result = run_packing(items, HybridFirstFit((0.5,)))
        assert result.item_bin[0] == result.item_bin[2]
        assert result.item_bin[1] != result.item_bin[0]

    def test_first_fit_within_class(self):
        items = ItemList(
            [
                Item(0, 0.2, 0.0, 10.0),  # small bin A
                Item(1, 0.9, 0.0, 10.0),  # large bin B
                Item(2, 0.9, 0.0, 10.0),  # large bin C
                Item(3, 0.2, 1.0, 2.0),   # small: earliest small bin = A
            ]
        )
        result = run_packing(items, HybridFirstFit((0.5,)))
        assert result.item_bin[3] == result.item_bin[0]

    def test_may_use_more_bins_than_plain_ff(self):
        # the price of classification: a small item can't use a large bin
        items = ItemList(
            [Item(0, 0.6, 0.0, 10.0), Item(1, 0.2, 0.0, 10.0)]
        )
        hff = run_packing(items, HybridFirstFit((0.5,)))
        ff = run_packing(items, FirstFit())
        assert ff.num_bins == 1
        assert hff.num_bins == 2


class TestClassifiedNextFit:
    def test_next_fit_within_class(self):
        items = ItemList(
            [
                Item(0, 0.3, 0.0, 10.0),  # small, bin 0 available for class 0
                Item(1, 0.3, 0.0, 10.0),  # joins bin 0
                Item(2, 0.3, 0.0, 10.0),  # joins bin 0 (0.9)
                Item(3, 0.3, 0.0, 10.0),  # misses → bin 1; bin 0 retired
                Item(4, 0.2, 1.0, 2.0),   # fits bin 0 but retired → bin 1
            ]
        )
        result = run_packing(items, ClassifiedNextFit((0.5,)))
        assert result.item_bin[0] == result.item_bin[1] == result.item_bin[2] == 0
        assert result.item_bin[3] == 1
        assert result.item_bin[4] == 1

    def test_classes_have_independent_available_bins(self):
        items = ItemList(
            [
                Item(0, 0.3, 0.0, 10.0),  # small class → bin 0
                Item(1, 0.8, 0.0, 10.0),  # large class → bin 1
                Item(2, 0.3, 1.0, 2.0),   # small available is still bin 0
            ]
        )
        result = run_packing(items, ClassifiedNextFit((0.5,)))
        assert result.item_bin[2] == 0

    def test_reset_between_runs(self):
        items = ItemList([Item(i, 0.4, 0.0, 2.0) for i in range(6)])
        algo = ClassifiedNextFit((0.5,))
        r1 = run_packing(items, algo)
        r2 = run_packing(items, algo)
        assert r1.item_bin == r2.item_bin
