"""Tests for the power-of-two-choices policy."""

import pytest
from hypothesis import given, settings

from repro.algorithms import BestFit, RandomFit, TwoChoiceFit
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.workloads.random_workloads import poisson_workload

from ..conftest import item_lists


class TestTwoChoiceFit:
    def test_single_candidate_forced(self):
        items = ItemList([Item(0, 0.6, 0.0, 2.0), Item(1, 0.3, 0.5, 1.5)])
        result = run_packing(items, TwoChoiceFit(seed=1))
        assert result.item_bin[1] == 0

    def test_picks_fuller_of_two(self):
        # exactly two feasible bins: the probe must hit both, pick fuller
        items = ItemList(
            [
                Item(0, 0.7, 0.0, 10.0),
                Item(1, 0.5, 0.0, 10.0),
                Item(2, 0.2, 1.0, 2.0),
            ]
        )
        result = run_packing(items, TwoChoiceFit(seed=3))
        assert result.item_bin[2] == 0  # 0.7 > 0.5

    def test_deterministic_given_seed(self):
        items = poisson_workload(60, seed=4)
        a = run_packing(items, TwoChoiceFit(seed=9))
        b = run_packing(items, TwoChoiceFit(seed=9))
        assert a.item_bin == b.item_bin

    def test_tie_breaks_to_earlier_bin(self):
        items = ItemList(
            [
                Item(0, 0.6, 0.0, 10.0),
                Item(1, 0.6, 0.0, 10.0),
                Item(2, 0.2, 1.0, 2.0),
            ]
        )
        result = run_packing(items, TwoChoiceFit(seed=0))
        assert result.item_bin[2] == 0

    @given(item_lists(max_items=25))
    @settings(max_examples=40, deadline=None)
    def test_is_any_fit(self, items):
        opened_badly = []

        class Watch(TwoChoiceFit):
            def choose_bin(self, state, size):
                target = super().choose_bin(state, size)
                if target is None and state.open_bins_fitting(size):
                    opened_badly.append(size)
                return target

        run_packing(items, Watch(seed=2))
        assert opened_badly == []

    def test_between_random_and_best_fit_on_average(self):
        """Two probes recover part of Best Fit's consolidation:
        averaged cost ordering BF ≤ 2-choice ≤ Random (tolerances for
        sampling noise)."""
        import numpy as np

        costs = {"bf": [], "two": [], "rand": []}
        for seed in range(10):
            inst = poisson_workload(80, seed=200 + seed, mu_target=6.0,
                                    arrival_rate=4.0)
            costs["bf"].append(run_packing(inst, BestFit()).total_usage_time)
            costs["two"].append(
                run_packing(inst, TwoChoiceFit(seed=seed)).total_usage_time
            )
            costs["rand"].append(
                run_packing(inst, RandomFit(seed=seed)).total_usage_time
            )
        bf, two, rand = (float(np.mean(costs[k])) for k in ("bf", "two", "rand"))
        assert two <= rand * 1.02
        assert bf <= two * 1.05
