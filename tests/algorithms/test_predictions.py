"""Tests for learning-augmented (predicted-departure) packing."""

import pytest
from hypothesis import given, settings

from repro.algorithms import DepartureAlignedFit, FirstFit, PredictedDepartureFit
from repro.algorithms.predictions import LogNormalPredictor
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.workloads.random_workloads import poisson_workload

from ..conftest import item_lists


class TestPredictor:
    def test_zero_noise_exact(self):
        p = LogNormalPredictor(0.0)
        it = Item(3, 0.5, 1.0, 5.0)
        assert p.predict_duration(it) == 4.0
        assert p.predict_departure(it) == 5.0

    def test_deterministic_per_item(self):
        p = LogNormalPredictor(0.7, seed=9)
        it = Item(3, 0.5, 1.0, 5.0)
        assert p.predict_duration(it) == p.predict_duration(it)

    def test_different_items_differ(self):
        p = LogNormalPredictor(0.7, seed=9)
        a = p.predict_duration(Item(1, 0.5, 0.0, 4.0))
        b = p.predict_duration(Item(2, 0.5, 0.0, 4.0))
        assert a != b

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalPredictor(-0.1)

    def test_predictions_positive(self):
        p = LogNormalPredictor(2.0, seed=1)
        for i in range(50):
            assert p.predict_duration(Item(i, 0.1, 0.0, 3.0)) > 0


class TestPredictedDepartureFit:
    def test_zero_sigma_matches_oracle(self):
        """Consistency: a perfect predictor reproduces the clairvoyant
        policy's placements exactly."""
        for seed in (1, 2, 3):
            inst = poisson_workload(60, seed=seed, mu_target=6.0, arrival_rate=3.0)
            pred = run_packing(inst, PredictedDepartureFit(sigma=0.0))
            oracle = run_packing(inst, DepartureAlignedFit())
            assert pred.item_bin == oracle.item_bin

    def test_any_fit_property(self):
        """Never opens a bin while one fits (robustness floor)."""
        inst = poisson_workload(60, seed=5, mu_target=6.0, arrival_rate=3.0)
        opened_badly = []

        class Watch(PredictedDepartureFit):
            def choose_bin_clairvoyant(self, state, item):
                target = super().choose_bin_clairvoyant(state, item)
                if target is None and state.open_bins_fitting(item.size):
                    opened_badly.append(item.item_id)
                return target

        run_packing(inst, Watch(sigma=1.5, seed=2))
        assert opened_badly == []

    def test_deterministic_given_seed(self):
        inst = poisson_workload(50, seed=7, mu_target=4.0, arrival_rate=2.0)
        a = run_packing(inst, PredictedDepartureFit(sigma=0.8, seed=3))
        b = run_packing(inst, PredictedDepartureFit(sigma=0.8, seed=3))
        assert a.item_bin == b.item_bin

    @given(item_lists(max_items=25))
    @settings(max_examples=30, deadline=None)
    def test_valid_packing_any_noise(self, items):
        result = run_packing(items, PredictedDepartureFit(sigma=1.0, seed=0))
        assert set(result.item_bin) == {it.item_id for it in items}
        assert result.total_usage_time >= items.span - 1e-7

    def test_noise_degrades_toward_first_fit(self):
        """Averaged over instances, more noise is never much better than
        less, and the noisy policy stays within the FF/oracle envelope
        up to a small tolerance."""
        import numpy as np

        instances = [
            poisson_workload(60, seed=100 + s, mu_target=8.0, arrival_rate=3.0)
            for s in range(6)
        ]

        def mean_cost(algo_factory):
            return float(
                np.mean(
                    [run_packing(i, algo_factory()).total_usage_time for i in instances]
                )
            )

        oracle = mean_cost(DepartureAlignedFit)
        noisy = mean_cost(lambda: PredictedDepartureFit(sigma=2.0, seed=1))
        assert noisy >= oracle - 1e-9
