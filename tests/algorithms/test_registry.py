"""Tests for the algorithm registry."""

import pytest

from repro.algorithms import ALGORITHM_REGISTRY, make_algorithm
from repro.algorithms.base import AnyFitAlgorithm, PackingAlgorithm


class TestRegistry:
    def test_all_entries_construct(self):
        for name in ALGORITHM_REGISTRY:
            algo = make_algorithm(name)
            assert isinstance(algo, PackingAlgorithm)
            assert algo.name == name

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="first-fit"):
            make_algorithm("nope")

    def test_expected_algorithms_present(self):
        expected = {
            "first-fit",
            "best-fit",
            "worst-fit",
            "last-fit",
            "random-fit",
            "two-choice-fit",
            "next-fit",
            "hybrid-first-fit",
            "classified-next-fit",
            "repack-ff",
        }
        assert expected == set(ALGORITHM_REGISTRY)

    def test_any_fit_membership(self):
        """Exactly the Any Fit family subclasses AnyFitAlgorithm."""
        any_fit = {
            name
            for name in ALGORITHM_REGISTRY
            if isinstance(make_algorithm(name), AnyFitAlgorithm)
        }
        # repack-ff is First Fit on the placement side (its migrations
        # happen after the event, not at placement), so it belongs here
        assert any_fit == {
            "first-fit", "best-fit", "worst-fit", "last-fit",
            "random-fit", "two-choice-fit", "repack-ff",
        }

    def test_factories_return_fresh_instances(self):
        a = make_algorithm("next-fit")
        b = make_algorithm("next-fit")
        assert a is not b
