"""Tests for First Fit — the paper's algorithm (Section III-B)."""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing

from ..conftest import item_lists


class TestFirstFitPlacement:
    def test_earliest_opened_bin_preferred(self):
        # two bins open; a small item must go to bin 0 even though bin 1
        # is emptier
        items = [
            Item(0, 0.7, 0.0, 10.0),  # bin 0
            Item(1, 0.7, 0.0, 10.0),  # bin 1 (doesn't fit bin 0)
            Item(2, 0.2, 1.0, 2.0),   # fits both → must take bin 0
        ]
        result = run_packing(items, FirstFit())
        assert result.item_bin[2] == 0

    def test_skips_full_earlier_bins(self):
        items = [
            Item(0, 0.9, 0.0, 10.0),  # bin 0 nearly full
            Item(1, 0.2, 0.0, 10.0),  # doesn't fit bin 0 → bin 1
            Item(2, 0.2, 1.0, 2.0),   # fits bin 1 only
        ]
        result = run_packing(items, FirstFit())
        assert result.item_bin[1] == 1
        assert result.item_bin[2] == 1

    def test_opens_new_bin_only_when_necessary(self):
        items = [Item(i, 0.25, 0.0, 10.0) for i in range(8)]
        result = run_packing(items, FirstFit())
        assert result.num_bins == 2  # 4 × 0.25 per bin

    def test_reuses_space_after_departure(self):
        items = [
            Item(0, 0.6, 0.0, 10.0),
            Item(1, 0.4, 0.0, 2.0),   # fills bin 0
            Item(2, 0.4, 3.0, 5.0),   # item 1 gone → fits bin 0 again
        ]
        result = run_packing(items, FirstFit())
        assert result.num_bins == 1

    def test_paper_example_two_bins(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        # 0.6 → bin0; 0.5 doesn't fit → bin1; 0.4 fits bin0 after nothing
        # departed? level 0.6+0.4=1.0 fits exactly
        assert result.item_bin == {0: 0, 1: 1, 2: 0}


class TestFirstFitAnyFitProperty:
    @given(item_lists(max_items=30))
    @settings(max_examples=60, deadline=None)
    def test_never_opens_bin_when_one_fits(self, items):
        """The defining Any Fit property, checked at every arrival."""
        failures = []

        class Watch(FirstFit):
            def choose_bin(self, state, size):
                target = super().choose_bin(state, size)
                if target is None and state.open_bins_fitting(size):
                    failures.append(size)
                return target

        run_packing(items, Watch())
        assert failures == []

    @given(item_lists(max_items=30))
    @settings(max_examples=60, deadline=None)
    def test_chooses_lowest_index_fitting(self, items):
        chosen = []

        class Watch(FirstFit):
            def choose_bin(self, state, size):
                target = super().choose_bin(state, size)
                fitting = state.open_bins_fitting(size)
                if target is not None:
                    chosen.append((target.index, min(b.index for b in fitting)))
                return target

        run_packing(items, Watch())
        for actual, expected in chosen:
            assert actual == expected
