"""Tests for the Harmonic(k) classification constructor."""

import pytest

from repro.algorithms.classified import ClassifiedNextFit
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing


class TestHarmonicConstructor:
    def test_thresholds_are_harmonic(self):
        algo = ClassifiedNextFit.harmonic(4)
        assert algo.thresholds == pytest.approx((1 / 4, 1 / 3, 1 / 2))
        assert algo.num_classes == 4

    def test_k1_single_class(self):
        algo = ClassifiedNextFit.harmonic(1)
        assert algo.thresholds == ()
        assert algo.num_classes == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ClassifiedNextFit.harmonic(0)

    def test_class_boundaries_align_with_fit_counts(self):
        """Items of class i (size in (1/(i+1), 1/i]) fit exactly i per bin."""
        algo = ClassifiedNextFit.harmonic(4)
        # class indexing: class 0 = sizes ≤ 1/4, class 3 = sizes > 1/2
        assert algo.class_of(0.26) == 1  # (1/4, 1/3]: three per bin
        assert algo.class_of(1 / 3) == 1
        assert algo.class_of(0.34) == 2  # (1/3, 1/2]: two per bin
        assert algo.class_of(0.51) == 3  # (1/2, 1]: one per bin

    def test_harmonic_packs_classes_separately(self):
        items = ItemList(
            [
                Item(0, 0.30, 0.0, 10.0),  # class (1/4, 1/3]
                Item(1, 0.60, 0.0, 10.0),  # class (1/2, 1]
                Item(2, 0.30, 1.0, 9.0),   # same class as item 0
            ]
        )
        result = run_packing(items, ClassifiedNextFit.harmonic(4))
        assert result.item_bin[0] == result.item_bin[2]
        assert result.item_bin[1] != result.item_bin[0]

    def test_three_per_bin_for_third_class(self):
        # four items of size 0.3: Next Fit within the class fills a bin
        # with three, then opens a second
        items = ItemList([Item(i, 0.3, 0.0, 5.0) for i in range(4)])
        result = run_packing(items, ClassifiedNextFit.harmonic(4))
        assert result.num_bins == 2
        first_bin = [i for i, b in result.item_bin.items() if b == 0]
        assert len(first_bin) == 3
