"""Differential tests for the indexed duration-classified First Fit.

Two bit-identity pins, both acceptance criteria for the trace PR:

- ``classes=1`` degenerates to plain First Fit **bit-for-bit** (same
  bins, same placements, same float usage times) on both the indexed
  and the reference path;
- for every class count, the indexed path equals the reference scan —
  the per-class segment trees are an optimisation, never a policy
  change.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    CLAIRVOYANT_REGISTRY,
    DurationClassifiedFirstFit,
    FirstFit,
)
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.workloads import poisson_workload

SEEDS = (0, 1, 2, 3, 4)


def fingerprint(result):
    """Everything a packing decides, floats uncoerced."""
    return (
        result.item_bin,
        [
            (b.index, b.opened_at, b.closed_at, b.usage_time)
            for b in result.bins
        ],
    )


def workload(seed, n=400):
    return poisson_workload(n, seed=seed, mu_target=10.0, arrival_rate=6.0)


class TestDegenerateClassEqualsFirstFit:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("indexed", (True, False))
    def test_classes_1_is_plain_ff_bit_identical(self, seed, indexed):
        items = workload(seed)
        plain = run_packing(items, FirstFit(), indexed=indexed)
        classified = run_packing(
            items, DurationClassifiedFirstFit(classes=1), indexed=indexed
        )
        assert fingerprint(classified) == fingerprint(plain)


class TestIndexedMatchesReference:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("classes", (2, 4, 8))
    def test_differential(self, seed, classes):
        items = workload(seed)
        ref = run_packing(
            items, DurationClassifiedFirstFit(classes=classes), indexed=False
        )
        idx = run_packing(
            items, DurationClassifiedFirstFit(classes=classes), indexed=True
        )
        assert fingerprint(idx) == fingerprint(ref)


class TestClassification:
    def test_geometric_classes_clamped(self):
        algo = DurationClassifiedFirstFit(classes=4, base=2.0, anchor=1.0)
        assert algo.class_of(0.01) == 0   # below anchor clamps down
        assert algo.class_of(1.0) == 0
        assert algo.class_of(2.0) == 1
        assert algo.class_of(4.0) == 2
        assert algo.class_of(8.0) == 3
        assert algo.class_of(1e9) == 3    # above range clamps up

    def test_single_class_ignores_duration(self):
        algo = DurationClassifiedFirstFit(classes=1)
        assert algo.class_of(1e-9) == 0
        assert algo.class_of(1e9) == 0

    def test_items_share_bins_only_within_a_class(self):
        items = ItemList(
            [
                Item(0, 0.3, 0.0, 1.5),    # class 0 (short)
                Item(1, 0.3, 0.1, 40.0),   # class high (long)
                Item(2, 0.3, 0.2, 1.6),    # short again — joins bin 0
            ]
        )
        result = run_packing(
            items, DurationClassifiedFirstFit(classes=4, anchor=1.0)
        )
        assert result.item_bin[0] == result.item_bin[2]
        assert result.item_bin[1] != result.item_bin[0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DurationClassifiedFirstFit(classes=0)
        with pytest.raises(ValueError):
            DurationClassifiedFirstFit(base=1.0)
        with pytest.raises(ValueError):
            DurationClassifiedFirstFit(anchor=0.0)

    def test_registered_as_clairvoyant(self):
        algo = CLAIRVOYANT_REGISTRY["duration-classified-ff"]()
        assert algo.clairvoyant
        assert isinstance(algo, DurationClassifiedFirstFit)
