"""Bounded-memory guarantee of the adapter streaming path.

The acceptance criterion for the trace subsystem: iterating a trace
through ``adapter.iter_items`` must hold O(adapter working set) memory,
never O(file).  Measured with tracemalloc by comparing the iteration
peak across a 10x file-size spread — a materialising implementation
scales linearly and fails the ratio bound immediately.
"""

from __future__ import annotations

import tracemalloc

from repro.traces import generate_azure_trace, generate_google_trace, get_adapter
from repro.traces.adapter import AdapterStats


def _iteration_peak(adapter, path) -> int:
    """Peak allocated bytes while consuming the stream one item at a time."""
    stats = AdapterStats()
    stream = adapter.iter_items(path, stats)
    tracemalloc.start()
    try:
        count = sum(1 for _ in stream)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert count == stats.items > 0
    return peak


class TestBoundedMemory:
    def test_azure_peak_does_not_scale_with_file(self, tmp_path):
        small = tmp_path / "small.csv"
        large = tmp_path / "large.csv"
        generate_azure_trace(small, 1_000, seed=2)
        generate_azure_trace(large, 10_000, seed=2)
        peak_small = _iteration_peak(get_adapter("azure"), small)
        peak_large = _iteration_peak(get_adapter("azure"), large)
        # 10x the records; O(1) streaming keeps the peak flat (allow 2x
        # slack for allocator noise), a list-building reader shows ~10x
        assert peak_large < 2 * peak_small, (peak_small, peak_large)
        # and the peak is a working set, not a file: well under the
        # ~700kB the large file occupies on disk
        assert peak_large < large.stat().st_size / 4

    def test_google_peak_bounded_by_open_tasks(self, tmp_path):
        small = tmp_path / "small.csv"
        large = tmp_path / "large.csv"
        # same arrival rate and mu → same expected open-task working
        # set, so the documented O(open tasks) bound predicts a flat
        # peak across a 10x record spread
        generate_google_trace(small, 1_000, seed=2)
        generate_google_trace(large, 10_000, seed=2)
        peak_small = _iteration_peak(get_adapter("google"), small)
        peak_large = _iteration_peak(get_adapter("google"), large)
        assert peak_large < 3 * peak_small, (peak_small, peak_large)

    def test_gzip_path_streams_too(self, tmp_path):
        plain = tmp_path / "t.csv"
        zipped = tmp_path / "t.csv.gz"
        generate_azure_trace(plain, 8_000, seed=3)
        generate_azure_trace(zipped, 8_000, seed=3)
        peak = _iteration_peak(get_adapter("azure"), zipped)
        # gzip adds a fixed decompression buffer, not an O(file) one
        assert peak < plain.stat().st_size
