"""Golden tests: checked-in fixture slices → pinned adapter output.

The fixtures in ``tests/data/traces`` are hand-written, one deliberately
dirty record per failure class, so every counter in
:class:`~repro.traces.AdapterStats` is exercised with an exact expected
value — not just "some rows were skipped".
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.items import ItemList
from repro.multidim.items import VectorItemList
from repro.traces import (
    AdapterStats,
    TraceFormatError,
    detect_schema,
    get_adapter,
    load_items,
)

DATA = Path(__file__).resolve().parent.parent / "data" / "traces"
AZURE = DATA / "azure_mini.csv"
GOOGLE = DATA / "google_mini.csv"


def quads(items):
    return [(it.item_id, it.size, it.arrival, it.departure) for it in items]


class TestAzureGolden:
    def test_scalar_items_pinned(self):
        items, stats = load_items(AZURE, schema="azure")
        assert isinstance(items, ItemList)
        assert quads(items) == [
            (0, 0.25, 0.0, 1.5),
            (1, 0.5, 0.25, 2.0),
            (2, 0.125, 1.25, 4.0),
        ]
        assert stats.as_dict() == {
            "records": 6,
            "items": 3,
            "malformed": 2,
            "orphaned": 0,
            "unfinished": 0,
            "censored": 1,
            "skip_reasons": {"core": 1, "endtime": 1},
        }

    def test_vector_items_pinned(self):
        items, stats = load_items(AZURE, schema="azure", vector=True)
        assert isinstance(items, VectorItemList)
        assert items.capacity == (1.0, 1.0)
        assert [it.sizes for it in items] == [
            (0.25, 0.125),
            (0.5, 0.25),
            (0.125, 0.0625),
        ]
        assert stats.items == 3

    def test_strict_raises_on_first_dirty_row(self):
        with pytest.raises(TraceFormatError) as exc:
            load_items(AZURE, schema="azure", strict=True)
        assert exc.value.field == "core"
        assert "azure_mini.csv" in str(exc.value)
        assert exc.value.line == 6  # comment + header + 3 rows before vm-d

    def test_censored_rows_skip_even_in_strict(self):
        """Censoring is a property of the slice, not a defect in it."""
        stats = AdapterStats(strict=True)
        adapter = get_adapter("azure")
        seen = []
        with pytest.raises(TraceFormatError):
            for item in adapter.iter_items(AZURE, stats):
                seen.append(item.item_id)
        # vm-c (censored, row before the strict failure) was skipped
        assert stats.censored == 1
        assert seen == [0, 1]


class TestGoogleGolden:
    def test_scalar_items_pinned(self):
        items, stats = load_items(GOOGLE, schema="google")
        # durations are inferred from SUBMIT/FINISH pairing, in seconds
        assert quads(items) == [
            (0, 0.25, 0.0, 1.0),
            (1, 0.5, 0.5, 2.0),
        ]
        assert stats.as_dict() == {
            "records": 10,
            "items": 2,
            "malformed": 2,
            "orphaned": 1,
            "unfinished": 1,
            "censored": 0,
            "skip_reasons": {"cpu_request": 1, "non-positive-duration": 1},
        }

    def test_vector_items_pinned(self):
        items, _ = load_items(GOOGLE, schema="google", vector=True)
        assert [it.sizes for it in items] == [(0.25, 0.125), (0.5, 0.25)]

    def test_jsonl_framing_equivalent(self, tmp_path):
        """The same events as JSONL parse to the identical instance."""
        import csv as csv_mod
        import json

        rows = []
        with open(GOOGLE) as f:
            for line in f:
                if not line.strip() or line.startswith("#"):
                    continue
                rows.append(next(csv_mod.reader([line])))
        p = tmp_path / "mini.jsonl"
        with open(p, "w") as f:
            for row in rows:
                f.write(json.dumps(dict(zip(
                    ("timestamp", "missing_info", "job_id", "task_index",
                     "machine_id", "event_type", "user", "scheduling_class",
                     "priority", "cpu_request", "memory_request",
                     "disk_request", "different_machine"), row))) + "\n")
        csv_items, csv_stats = load_items(GOOGLE, schema="google")
        jl_items, jl_stats = load_items(p, schema="google")
        assert quads(csv_items) == quads(jl_items)
        assert csv_stats.as_dict() == jl_stats.as_dict()


class TestDetection:
    def test_fixture_schemas_detected(self):
        assert detect_schema(AZURE).name == "azure"
        assert detect_schema(GOOGLE).name == "google"

    def test_unknown_schema_named_in_error(self):
        with pytest.raises(ValueError) as exc:
            get_adapter("borg")
        assert "azure" in str(exc.value) and "google" in str(exc.value)

    def test_undetectable_file_raises(self, tmp_path):
        p = tmp_path / "mystery.csv"
        p.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceFormatError) as exc:
            detect_schema(p)
        assert "--schema" in str(exc.value)

    def test_empty_file_raises(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        with pytest.raises(TraceFormatError):
            detect_schema(p)

    def test_gzipped_fixture_detects_and_loads_identically(self, tmp_path):
        import gzip

        p = tmp_path / "azure_mini.csv.gz"
        with gzip.open(p, "wt") as f:
            f.write(AZURE.read_text())
        assert detect_schema(p).name == "azure"
        plain, _ = load_items(AZURE, schema="azure")
        zipped, _ = load_items(p, schema="azure")
        assert quads(plain) == quads(zipped)
