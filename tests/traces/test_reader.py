"""Unit tests for the shared streaming reader and TraceFormatError."""

from __future__ import annotations

import pytest

from repro.traces.reader import (
    TraceFormatError,
    iter_csv_records,
    iter_jsonl_records,
    open_trace,
    record_float,
    record_int,
    record_str,
    sniff_lines,
    trace_suffix,
    write_trace,
)


class TestErrorFormatting:
    def test_full_context(self):
        err = TraceFormatError("bad value", "trace.csv", 17, "core")
        assert str(err) == "trace.csv, line 17, field 'core': bad value"
        assert (err.source, err.line, err.field) == ("trace.csv", 17, "core")
        assert err.message == "bad value"

    def test_partial_context(self):
        assert str(TraceFormatError("oops")) == "oops"
        assert str(TraceFormatError("oops", line=3)) == "line 3: oops"
        assert str(TraceFormatError("oops", field="size")) == "field 'size': oops"

    def test_is_a_value_error(self):
        with pytest.raises(ValueError):
            raise TraceFormatError("still a ValueError")


class TestCsvRecords:
    def test_header_mode_with_comments(self):
        lines = ["# comment\n", "a,b\n", "1,2\n", "\n", "3,4\n"]
        out = list(iter_csv_records(lines))
        assert out == [(3, {"a": "1", "b": "2"}), (5, {"a": "3", "b": "4"})]

    def test_positional_mode(self):
        out = list(iter_csv_records(["1,2\n"], fieldnames=("x", "y")))
        assert out == [(1, {"x": "1", "y": "2"})]

    def test_missing_required_column(self):
        with pytest.raises(TraceFormatError) as exc:
            list(iter_csv_records(["a,b\n"], required=("a", "size")))
        assert "size" in str(exc.value)

    def test_too_many_values_raises_with_line(self):
        with pytest.raises(TraceFormatError) as exc:
            list(iter_csv_records(["a,b\n", "1,2,3\n"]))
        assert exc.value.line == 2

    def test_short_row_leaves_fields_absent(self):
        (_, rec), = iter_csv_records(["a,b,c\n", "1,2\n"])
        assert rec == {"a": "1", "b": "2"}

    def test_empty_file_with_required_header(self):
        with pytest.raises(TraceFormatError):
            list(iter_csv_records([], required=("a",)))


class TestJsonlRecords:
    def test_objects_streamed_with_line_numbers(self):
        out = list(iter_jsonl_records(['{"a": 1}\n', "# note\n", '{"a": 2}\n']))
        assert out == [(1, {"a": 1}), (3, {"a": 2})]

    def test_malformed_json_names_line(self):
        with pytest.raises(TraceFormatError) as exc:
            list(iter_jsonl_records(['{"a": 1}\n', "{broken\n"]))
        assert exc.value.line == 2

    def test_non_object_rejected(self):
        with pytest.raises(TraceFormatError):
            list(iter_jsonl_records(["[1, 2]\n"]))


class TestFieldAccessors:
    def test_happy_paths(self):
        rec = {"s": "x", "f": "2.5", "i": "7"}
        assert record_str(rec, "s") == "x"
        assert record_float(rec, "f") == 2.5
        assert record_int(rec, "i") == 7

    @pytest.mark.parametrize(
        "fn,rec,field",
        [
            (record_str, {}, "s"),
            (record_str, {"s": "  "}, "s"),
            (record_float, {"f": "abc"}, "f"),
            (record_float, {"f": "nan"}, "f"),
            (record_float, {"f": "inf"}, "f"),
            (record_int, {"i": "1.5"}, "i"),
        ],
    )
    def test_rejections_name_the_field(self, fn, rec, field):
        with pytest.raises(TraceFormatError) as exc:
            fn(rec, field, "f.csv", 9)
        assert exc.value.field == field
        assert exc.value.line == 9


class TestFileHelpers:
    def test_suffix_strips_gz(self):
        assert trace_suffix("a/b.csv") == ".csv"
        assert trace_suffix("a/b.csv.gz") == ".csv"
        assert trace_suffix("a/b.jsonl.gz") == ".jsonl"

    def test_write_then_sniff_gzipped(self, tmp_path):
        p = tmp_path / "t.csv.gz"
        n = write_trace(p, ["a,b", "1,2\n", "3,4"])
        assert n == 3
        assert sniff_lines(p, limit=2) == ["a,b", "1,2"]
        with open_trace(p) as f:
            assert f.read() == "a,b\n1,2\n3,4\n"
