"""CLI-level tests for the ``repro trace`` command group.

The full conversion pipeline the README documents: generate a seeded
synthetic trace file, inspect it, thin it, convert it to the internal
format, then pack the converted instance with ``repro run``-style flow
(``repro pack``).
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.workloads.traces import load_trace


class TestGenerate:
    def test_generate_then_info(self, tmp_path, capsys):
        out = tmp_path / "az.csv"
        assert main([
            "trace", "generate", "--schema", "azure",
            "--out", str(out), "--n", "150", "--seed", "5",
            "--censored", "0.1", "--malformed", "0.05",
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["trace", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "schema: azure" in info
        assert "records: 150" in info
        assert "mu:" in info and "time-space demand:" in info

    def test_generate_google_and_detect(self, tmp_path, capsys):
        out = tmp_path / "goog.csv.gz"
        assert main([
            "trace", "generate", "--schema", "google",
            "--out", str(out), "--n", "200", "--seed", "5",
            "--orphaned", "0.05",
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "schema: google" in info
        assert "orphaned:" in info


class TestConvert:
    def test_convert_to_internal_then_pack(self, tmp_path, capsys):
        raw = tmp_path / "az.csv"
        internal = tmp_path / "az.json"
        main(["trace", "generate", "--schema", "azure",
              "--out", str(raw), "--n", "120", "--seed", "2"])
        assert main([
            "trace", "convert", str(raw), "--out", str(internal),
        ]) == 0
        assert "converted 120 -> kept 120 items" in capsys.readouterr().out
        items = load_trace(internal)
        assert len(items) == 120
        assert items[0].arrival == 0.0  # rebased
        # the converted instance is a first-class internal trace
        assert main(["pack", str(internal), "--algorithm", "first-fit"]) == 0
        assert "bins" in capsys.readouterr().out

    def test_convert_with_sample_and_window(self, tmp_path, capsys):
        raw = tmp_path / "az.csv"
        internal = tmp_path / "thin.json"
        main(["trace", "generate", "--schema", "azure",
              "--out", str(raw), "--n", "300", "--seed", "2"])
        capsys.readouterr()
        assert main([
            "trace", "convert", str(raw), "--out", str(internal),
            "--sample", "0.5", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "sampled out" in out
        kept = len(load_trace(internal))
        assert 0 < kept < 300

    def test_convert_vector_json(self, tmp_path):
        raw = tmp_path / "az.csv"
        internal = tmp_path / "vec.json"
        main(["trace", "generate", "--schema", "azure",
              "--out", str(raw), "--n", "50", "--seed", "2"])
        assert main([
            "trace", "convert", str(raw), "--out", str(internal), "--vector",
        ]) == 0
        doc = json.loads(internal.read_text())
        assert doc["capacity"] == [1.0, 1.0]
        assert "sizes" in doc["items"][0]
        vec = load_trace(internal)
        assert vec.capacity == (1.0, 1.0)

    def test_strict_mode_fails_on_dirty_trace(self, tmp_path, capsys):
        raw = tmp_path / "dirty.csv"
        main(["trace", "generate", "--schema", "azure",
              "--out", str(raw), "--n", "100", "--seed", "2",
              "--malformed", "0.2"])
        capsys.readouterr()
        rc = main(["trace", "convert", str(raw),
                   "--out", str(tmp_path / "x.json"), "--strict"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "line" in err  # the error names where the defect is


class TestSample:
    def test_sample_thins_in_schema(self, tmp_path, capsys):
        raw = tmp_path / "az.csv"
        thin = tmp_path / "thin.csv"
        main(["trace", "generate", "--schema", "azure",
              "--out", str(raw), "--n", "200", "--seed", "3"])
        capsys.readouterr()
        assert main([
            "trace", "sample", str(raw), "--out", str(thin),
            "--fraction", "0.25", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "kept" in out and "azure" in out
        # output is still loadable in the same schema
        assert main(["trace", "info", str(thin), "--schema", "azure"]) == 0

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["trace", "info", str(tmp_path / "nope.csv")])
        assert rc == 2
        assert "error" in capsys.readouterr().err
