"""Generators, normalization, and the schema-preserving sampler.

The generators exist so CI and the bench can exercise the adapters
without binary blobs in git — their whole value is byte-determinism, so
that's the first thing pinned here.
"""

from __future__ import annotations

import pytest

from repro.traces import (
    GENERATORS,
    NormalizeStats,
    generate_azure_trace,
    generate_google_trace,
    generate_trace,
    keep_fraction,
    load_items,
    normalize_items,
    normalize_stream,
    sample_trace_file,
)
from repro.workloads import poisson_workload


class TestGenerators:
    def test_same_seed_same_bytes(self, tmp_path):
        for schema in GENERATORS:
            a = tmp_path / f"{schema}-a.csv"
            b = tmp_path / f"{schema}-b.csv"
            generate_trace(schema, a, 200, seed=7)
            generate_trace(schema, b, 200, seed=7)
            assert a.read_bytes() == b.read_bytes()
            c = tmp_path / f"{schema}-c.csv"
            generate_trace(schema, c, 200, seed=8)
            assert a.read_bytes() != c.read_bytes()

    def test_azure_dirt_knobs_reach_the_stats(self, tmp_path):
        p = tmp_path / "az.csv"
        generate_azure_trace(p, 400, seed=1, censored=0.1, malformed=0.05)
        items, stats = load_items(p, schema="azure")
        assert stats.censored > 0
        assert stats.malformed > 0
        assert stats.items == len(items) == 400 - stats.censored - stats.malformed

    def test_google_dirt_knobs_reach_the_stats(self, tmp_path):
        p = tmp_path / "goog.csv"
        generate_google_trace(
            p, 400, seed=1, orphaned=0.05, unfinished=0.1, malformed=0.05
        )
        items, stats = load_items(p, schema="google")
        assert stats.orphaned > 0
        assert stats.unfinished > 0
        assert stats.malformed > 0
        assert stats.items == len(items) > 0

    def test_gzip_output_supported(self, tmp_path):
        plain = tmp_path / "az.csv"
        zipped = tmp_path / "az.csv.gz"
        generate_azure_trace(plain, 100, seed=3)
        generate_azure_trace(zipped, 100, seed=3)
        a, _ = load_items(plain, schema="azure")
        b, _ = load_items(zipped, schema="azure")
        assert [(i.item_id, i.size) for i in a] == [(i.item_id, i.size) for i in b]

    def test_unknown_schema_raises(self, tmp_path):
        with pytest.raises(ValueError):
            generate_trace("borg", tmp_path / "x.csv", 10)


class TestNormalize:
    def make(self, n=60, seed=4):
        return poisson_workload(n, seed=seed, mu_target=8.0, arrival_rate=4.0)

    def test_window_keeps_by_arrival_and_rebases(self):
        items = self.make()
        lo, hi = 2.0, 8.0
        out, stats = normalize_items(items, window=(lo, hi))
        assert stats.kept == len(out) > 0
        assert stats.kept + stats.dropped_window == len(items)
        kept_src = [it for it in items if lo <= it.arrival < hi]
        assert [it.item_id for it in out] == [it.item_id for it in kept_src]
        # rebased to the window start, full interval retained
        for src, dst in zip(kept_src, out):
            assert dst.arrival == src.arrival - lo
            assert dst.departure == src.departure - lo

    def test_sample_is_seed_stable_and_order_free(self):
        items = self.make(200)
        out1, _ = normalize_items(items, sample=0.5, seed=11, rebase=False)
        out2, _ = normalize_items(items, sample=0.5, seed=11, rebase=False)
        assert [it.item_id for it in out1] == [it.item_id for it in out2]
        # each item's keep decision is an independent crc32 draw — pin
        # the subsets for two seeds against that ground truth
        for seed, out in ((11, out1), (31, normalize_items(
                items, sample=0.5, seed=31, rebase=False)[0])):
            assert {it.item_id for it in out} == {
                it.item_id
                for it in items
                if keep_fraction(str(it.item_id), 0.5, seed)
            }

    def test_clamp_counts_and_caps(self):
        from repro.core.items import Item, ItemList

        items = ItemList(
            [Item(0, 0.5, 0.0, 1.0), Item(1, 1.0, 0.0, 1.0)], capacity=1.0
        )
        out, stats = normalize_items(items, scale=0.8)
        assert stats.clamped == 1
        assert out[1].size == 1.0
        assert out[0].size == 0.5 / 0.8

    def test_rebase_without_window_uses_first_kept_arrival(self):
        from repro.core.items import Item, ItemList

        items = ItemList([Item(0, 0.5, 5.0, 9.0), Item(1, 0.5, 6.0, 7.0)])
        out, _ = normalize_items(items)
        assert out[0].arrival == 0.0
        assert out[0].departure == 4.0
        assert out[1].arrival == 1.0

    def test_stream_validates_knobs(self):
        stats = NormalizeStats()
        with pytest.raises(ValueError):
            list(normalize_stream([], stats, scale=0.0))
        with pytest.raises(ValueError):
            list(normalize_stream([], stats, sample=1.5))
        with pytest.raises(ValueError):
            list(normalize_stream([], stats, window=(3.0, 1.0)))


class TestSampler:
    def test_azure_header_always_survives(self, tmp_path):
        src = tmp_path / "az.csv"
        dst = tmp_path / "az-thin.csv"
        generate_azure_trace(src, 200, seed=5)
        kept, total = sample_trace_file(src, dst, "azure", 0.3, seed=1)
        assert total == 200
        assert 0 < kept < total
        text = dst.read_text()
        assert text.splitlines()[0].startswith("vmId,")
        # still a valid trace: exactly the kept rows convert
        items, stats = load_items(dst, schema="azure")
        assert stats.items == kept

    def test_google_pairs_survive_together(self, tmp_path):
        src = tmp_path / "goog.csv"
        dst = tmp_path / "goog-thin.csv"
        generate_google_trace(src, 300, seed=5)
        sample_trace_file(src, dst, "google", 0.4, seed=2)
        _, stats = load_items(dst, schema="google")
        # entity-keyed thinning never splits a SUBMIT/FINISH pair
        assert stats.orphaned == 0
        assert stats.unfinished == 0
        assert stats.items > 0

    def test_kept_lines_are_byte_identical(self, tmp_path):
        src = tmp_path / "az.csv"
        dst = tmp_path / "thin.csv"
        generate_azure_trace(src, 100, seed=9)
        sample_trace_file(src, dst, "azure", 0.5, seed=3)
        src_lines = set(src.read_text().splitlines())
        for line in dst.read_text().splitlines():
            assert line in src_lines

    def test_fraction_validated(self, tmp_path):
        src = tmp_path / "az.csv"
        generate_azure_trace(src, 10, seed=1)
        with pytest.raises(ValueError):
            sample_trace_file(src, tmp_path / "o.csv", "azure", 0.0)
        with pytest.raises(ValueError):
            sample_trace_file(src, tmp_path / "o.csv", "borg", 0.5)
