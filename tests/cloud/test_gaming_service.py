"""Tests for the cloud gaming provider simulation (experiment T6 core)."""

import pytest

from repro.cloud.billing import ContinuousBilling, HourlyBilling
from repro.cloud.gaming_service import GamingScenario, run_gaming_comparison


def scenario(**kw):
    defaults = dict(name="test", num_sessions=150, request_rate=4.0, seed=5)
    defaults.update(kw)
    return GamingScenario(**defaults)


class TestGamingComparison:
    def test_all_algorithms_reported(self):
        comp = run_gaming_comparison(scenario())
        assert set(comp.reports) == {
            "first-fit",
            "best-fit",
            "worst-fit",
            "next-fit",
            "hybrid-first-fit",
        }

    def test_same_workload_for_all(self):
        comp = run_gaming_comparison(scenario())
        usages = {
            name: sorted(j for s in rep.servers for j in s.jobs)
            for name, rep in comp.reports.items()
        }
        first = next(iter(usages.values()))
        assert all(v == first for v in usages.values())

    def test_first_fit_competitive_with_next_fit(self):
        """The paper's practical takeaway: FF ≤ NF in cost."""
        comp = run_gaming_comparison(scenario(num_sessions=400))
        assert (
            comp.reports["first-fit"].total_cost
            <= comp.reports["next-fit"].total_cost + 1e-9
        )

    def test_best_algorithm_is_cheapest(self):
        comp = run_gaming_comparison(scenario())
        best = comp.best_algorithm()
        assert all(
            comp.reports[best].total_cost <= r.total_cost + 1e-12
            for r in comp.reports.values()
        )

    def test_cost_table_renders(self):
        comp = run_gaming_comparison(scenario())
        table = comp.cost_table()
        assert "first-fit" in table and "cost" in table

    def test_hourly_billing_costs_more(self):
        cont = run_gaming_comparison(scenario(billing=ContinuousBilling()))
        hourly = run_gaming_comparison(scenario(billing=HourlyBilling()))
        for name in cont.reports:
            assert hourly.reports[name].total_cost >= cont.reports[name].total_cost - 1e-9

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            run_gaming_comparison(scenario(), algorithms=("no-such-fit",))
