"""Tests for warm-server retention."""

import pytest

from repro.cloud.billing import ContinuousBilling, HourlyBilling
from repro.cloud.retention import (
    BilledHourBoundary,
    FixedCooldown,
    NoRetention,
    RetentionDispatcher,
)
from repro.core.items import Item, ItemList
from repro.workloads.gaming import gaming_workload


def jobs(*tuples):
    return ItemList([Item(i, s, a, d) for i, (s, a, d) in enumerate(tuples)])


class TestPolicies:
    def test_no_retention(self):
        assert NoRetention().hold_until(0.0, 2.5) == 2.5

    def test_fixed_cooldown(self):
        assert FixedCooldown(0.5).hold_until(0.0, 2.0) == 2.5
        with pytest.raises(ValueError):
            FixedCooldown(-1.0)

    def test_hour_boundary(self):
        p = BilledHourBoundary(quantum=1.0)
        assert p.hold_until(0.0, 2.3) == 3.0
        assert p.hold_until(0.0, 3.0) == 3.0  # exact boundary not extended
        assert p.hold_until(0.5, 2.3) == 2.5  # boundaries relative to open
        with pytest.raises(ValueError):
            BilledHourBoundary(quantum=0.0)

    def test_hour_boundary_minimum_one_quantum(self):
        # a server emptied moments after opening is still held one quantum
        assert BilledHourBoundary(1.0).hold_until(2.0, 2.01) == 3.0


class TestRetentionDispatcher:
    def test_no_retention_matches_paper_semantics(self):
        """With NoRetention, server count equals the plain FF bin count."""
        from repro.algorithms import FirstFit
        from repro.core.packing import run_packing

        stream = gaming_workload(150, seed=4)
        rep = RetentionDispatcher(NoRetention()).dispatch(stream)
        ff = run_packing(stream, FirstFit())
        assert rep.num_servers == ff.num_bins
        assert rep.total_rented_time == pytest.approx(ff.total_usage_time)
        assert rep.num_reuses == 0

    def test_warm_server_reused(self):
        # job 0 ends at 1; job 1 arrives at 1.2, inside the cooldown
        rep = RetentionDispatcher(FixedCooldown(0.5)).dispatch(
            jobs((0.5, 0.0, 1.0), (0.5, 1.2, 2.0))
        )
        assert rep.num_servers == 1
        assert rep.num_reuses == 1

    def test_expired_hold_opens_new_server(self):
        rep = RetentionDispatcher(FixedCooldown(0.1)).dispatch(
            jobs((0.5, 0.0, 1.0), (0.5, 2.0, 3.0))
        )
        assert rep.num_servers == 2
        assert rep.num_reuses == 0
        # the first rental ends at its hold expiry, not at the next event
        assert rep.servers[0].rental.right == pytest.approx(1.1)

    def test_warm_capacity_respected(self):
        # warm server is empty, so even a big job can reuse it
        rep = RetentionDispatcher(FixedCooldown(1.0)).dispatch(
            jobs((0.3, 0.0, 1.0), (0.9, 1.5, 2.5))
        )
        assert rep.num_servers == 1

    def test_hour_boundary_never_costlier_under_hourly(self):
        for seed in (1, 2, 3):
            stream = gaming_workload(200, seed=seed, request_rate=4.0)
            billing = HourlyBilling(quantum=1.0)
            none = RetentionDispatcher(NoRetention(), billing=billing).dispatch(stream)
            hb = RetentionDispatcher(
                BilledHourBoundary(1.0), billing=billing
            ).dispatch(stream)
            # free retention: reuse can only merge rentals within paid time
            assert hb.total_cost <= none.total_cost * 1.02 + 1e-9

    def test_retention_costs_under_continuous(self):
        stream = gaming_workload(200, seed=5, request_rate=4.0)
        billing = ContinuousBilling()
        none = RetentionDispatcher(NoRetention(), billing=billing).dispatch(stream)
        cd = RetentionDispatcher(FixedCooldown(1.0), billing=billing).dispatch(stream)
        assert cd.total_cost >= none.total_cost - 1e-9

    def test_all_jobs_served(self):
        stream = gaming_workload(120, seed=7)
        rep = RetentionDispatcher(FixedCooldown(0.5)).dispatch(stream)
        served = sorted(j for s in rep.servers for j in s.jobs)
        assert served == sorted(it.item_id for it in stream)
        assert all(s.released_at is not None for s in rep.servers)

    def test_rentals_are_contiguous_supersets_of_busy_time(self):
        stream = gaming_workload(80, seed=9)
        rep = RetentionDispatcher(FixedCooldown(0.3)).dispatch(stream)
        for s in rep.servers:
            for jid in s.jobs:
                it = next(x for x in stream if x.item_id == jid)
                assert s.rental.left <= it.arrival + 1e-9
                assert it.departure <= s.rental.right + 1e-9
