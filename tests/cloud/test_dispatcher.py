"""Tests for the cloud dispatcher and cost accounting."""

import pytest

from repro.algorithms import FirstFit, NextFit
from repro.cloud.billing import ContinuousBilling, HourlyBilling
from repro.cloud.dispatcher import ConcurrencyMeter, Dispatcher
from repro.cloud.server import InstanceType, ServerRecord
from repro.core.items import Item, ItemList
from repro.workloads.gaming import gaming_workload


def jobs():
    return ItemList(
        [
            Item(0, 0.6, 0.0, 2.0),
            Item(1, 0.5, 0.5, 1.5),
            Item(2, 0.4, 1.0, 3.0),
        ]
    )


class TestDispatcher:
    def test_continuous_cost_equals_usage_time(self):
        report = Dispatcher(FirstFit()).dispatch(jobs())
        assert report.total_cost == pytest.approx(report.total_usage_time)
        assert report.billing_overhead == pytest.approx(1.0)

    def test_hourly_cost_at_least_usage(self):
        report = Dispatcher(FirstFit(), billing=HourlyBilling()).dispatch(jobs())
        assert report.total_billed_time >= report.total_usage_time
        assert report.billing_overhead >= 1.0

    def test_instance_price_scales_cost(self):
        cheap = Dispatcher(
            FirstFit(), instance_type=InstanceType("a", 1.0, hourly_price=1.0)
        ).dispatch(jobs())
        costly = Dispatcher(
            FirstFit(), instance_type=InstanceType("b", 1.0, hourly_price=2.5)
        ).dispatch(jobs())
        assert costly.total_cost == pytest.approx(2.5 * cheap.total_cost)

    def test_server_records_cover_all_jobs(self):
        report = Dispatcher(FirstFit()).dispatch(jobs())
        served = sorted(j for s in report.servers for j in s.jobs)
        assert served == [0, 1, 2]

    def test_capacity_follows_instance_type(self):
        # capacity-2 servers fit both 0.6 and 0.5 + 0.4 together
        big = InstanceType("big", capacity=2.0, hourly_price=1.0)
        report = Dispatcher(FirstFit(), instance_type=big).dispatch(
            ItemList(
                [Item(0, 0.9, 0.0, 2.0), Item(1, 0.9, 0.0, 2.0), Item(2, 0.2, 0.0, 2.0)],
                capacity=2.0,
            )
        )
        assert report.num_servers == 1

    def test_summary_contains_key_figures(self):
        report = Dispatcher(NextFit()).dispatch(jobs())
        s = report.summary()
        assert "next-fit" in s and "servers" in s


class TestConcurrencyMeter:
    def test_observer_is_forwarded_to_the_driver(self):
        meter = ConcurrencyMeter()
        report = Dispatcher(FirstFit()).dispatch(jobs(), observers=[meter])
        # items 0 and 1 overlap on [0.5, 1.5): two servers at the peak
        assert meter.peak_open == report.num_servers == 2
        assert 0.0 < meter.mean_open <= meter.peak_open

    def test_same_meter_works_on_the_vector_engine(self):
        from repro.multidim import (
            VectorItem,
            VectorItemList,
            make_vector_algorithm,
            run_vector_packing,
        )

        meter = ConcurrencyMeter()
        items = VectorItemList(
            [
                VectorItem(0, (0.6, 0.6), 0.0, 2.0),
                VectorItem(1, (0.5, 0.5), 0.5, 1.5),
                VectorItem(2, (0.4, 0.4), 1.0, 3.0),
            ],
            capacity=(1.0, 1.0),
        )
        run_vector_packing(
            items, make_vector_algorithm("vector-first-fit"), observers=[meter]
        )
        assert meter.peak_open == 2
        assert 0.0 < meter.mean_open <= meter.peak_open


class _Event:
    def __init__(self, time):
        self.time = time


class _State:
    def __init__(self, num_open):
        self.num_open = num_open


class TestConcurrencyMeterEdgeCases:
    def test_empty_trace(self):
        """No events at all: the meter reports zeros, not a ZeroDivisionError."""
        meter = ConcurrencyMeter()
        from repro.core.packing import run_packing

        run_packing(ItemList([]), FirstFit(), observers=[meter])
        assert meter.peak_open == 0
        assert meter.mean_open == 0.0

    def test_single_item(self):
        """One job: open exactly during [arrival, departure) → mean 1.0."""
        meter = ConcurrencyMeter()
        from repro.core.packing import run_packing

        run_packing(ItemList([Item(0, 0.5, 1.0, 3.0)]), FirstFit(), observers=[meter])
        assert meter.peak_open == 1
        assert meter.mean_open == pytest.approx(1.0)

    def test_zero_duration_intervals_at_ties(self):
        """Simultaneous events produce dt=0 intervals that must not skew
        the mean: two bins over [0,2), one over [2,4) → mean 1.5."""
        meter = ConcurrencyMeter()
        from repro.core.packing import run_packing

        run_packing(
            ItemList(
                [
                    Item(0, 0.6, 0.0, 2.0),
                    Item(1, 0.6, 0.0, 2.0),
                    Item(2, 0.6, 2.0, 4.0),
                ]
            ),
            FirstFit(),
            observers=[meter],
        )
        assert meter.peak_open == 2
        assert meter.mean_open == pytest.approx(1.5)

    def test_zero_span_pins_mean_to_zero(self):
        """All observed events at one instant: span 0 → mean 0.0 (pinned),
        while the peak still reflects what was seen."""
        meter = ConcurrencyMeter()
        meter(_Event(1.0), _State(3))
        meter(_Event(1.0), _State(0))
        assert meter.peak_open == 3
        assert meter.mean_open == 0.0


class TestLiveDispatch:
    def test_live_settle_matches_batch_dispatch(self):
        """The streaming dispatcher bills exactly what the batch one does."""
        items = gaming_workload(200, seed=13)
        batch = Dispatcher(FirstFit()).dispatch(items)
        live = Dispatcher(FirstFit()).live()
        for it in sorted(items, key=lambda it: it.arrival):
            live.submit(it)
        report = live.settle()
        assert report.packing.item_bin == batch.packing.item_bin
        assert report.total_usage_time == batch.total_usage_time
        assert report.total_cost == pytest.approx(batch.total_cost)
        assert report.num_servers == batch.num_servers
        assert [s.server_id for s in report.servers] == [
            s.server_id for s in batch.servers
        ]

    def test_cost_accrues_as_servers_close(self):
        live = Dispatcher(FirstFit(), billing=HourlyBilling()).live()
        live.submit(Item(0, 0.9, 0.0, 2.0))
        live.submit(Item(1, 0.9, 0.5, 4.0))
        assert live.cost_so_far == 0.0  # nothing closed yet
        live.advance(3.0)  # server 0 shuts down at t=2
        assert len(live.records) == 1
        mid_cost = live.cost_so_far
        assert mid_cost > 0
        report = live.settle()
        assert report.total_cost == pytest.approx(live.cost_so_far)
        assert live.cost_so_far > mid_cost

    def test_live_forwards_engine_kwargs(self):
        from repro.service import MetricsRegistry, make_admission_policy

        live = Dispatcher(FirstFit()).live(
            admission=make_admission_policy("reject", max_open=1),
            metrics=MetricsRegistry(),
        )
        assert live.submit(Item(0, 0.9, 0.0, 5.0)).action == "placed"
        assert live.submit(Item(1, 0.9, 1.0, 5.0)).action == "rejected"
        assert live.engine.metrics.as_dict()["repro_service_jobs_rejected_total"] == 1
        report = live.settle()
        assert report.num_servers == 1


class TestInstanceType:
    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType("x", capacity=0.0)
        with pytest.raises(ValueError):
            InstanceType("x", hourly_price=-1.0)


class TestGamingEndToEnd:
    def test_dispatch_real_workload(self):
        report = Dispatcher(FirstFit()).dispatch(gaming_workload(150, seed=11))
        assert report.num_servers > 0
        assert report.total_cost > 0
        assert report.total_usage_time >= 0
