"""Tests for the cloud dispatcher and cost accounting."""

import pytest

from repro.algorithms import FirstFit, NextFit
from repro.cloud.billing import ContinuousBilling, HourlyBilling
from repro.cloud.dispatcher import ConcurrencyMeter, Dispatcher
from repro.cloud.server import InstanceType, ServerRecord
from repro.core.items import Item, ItemList
from repro.workloads.gaming import gaming_workload


def jobs():
    return ItemList(
        [
            Item(0, 0.6, 0.0, 2.0),
            Item(1, 0.5, 0.5, 1.5),
            Item(2, 0.4, 1.0, 3.0),
        ]
    )


class TestDispatcher:
    def test_continuous_cost_equals_usage_time(self):
        report = Dispatcher(FirstFit()).dispatch(jobs())
        assert report.total_cost == pytest.approx(report.total_usage_time)
        assert report.billing_overhead == pytest.approx(1.0)

    def test_hourly_cost_at_least_usage(self):
        report = Dispatcher(FirstFit(), billing=HourlyBilling()).dispatch(jobs())
        assert report.total_billed_time >= report.total_usage_time
        assert report.billing_overhead >= 1.0

    def test_instance_price_scales_cost(self):
        cheap = Dispatcher(
            FirstFit(), instance_type=InstanceType("a", 1.0, hourly_price=1.0)
        ).dispatch(jobs())
        costly = Dispatcher(
            FirstFit(), instance_type=InstanceType("b", 1.0, hourly_price=2.5)
        ).dispatch(jobs())
        assert costly.total_cost == pytest.approx(2.5 * cheap.total_cost)

    def test_server_records_cover_all_jobs(self):
        report = Dispatcher(FirstFit()).dispatch(jobs())
        served = sorted(j for s in report.servers for j in s.jobs)
        assert served == [0, 1, 2]

    def test_capacity_follows_instance_type(self):
        # capacity-2 servers fit both 0.6 and 0.5 + 0.4 together
        big = InstanceType("big", capacity=2.0, hourly_price=1.0)
        report = Dispatcher(FirstFit(), instance_type=big).dispatch(
            ItemList(
                [Item(0, 0.9, 0.0, 2.0), Item(1, 0.9, 0.0, 2.0), Item(2, 0.2, 0.0, 2.0)],
                capacity=2.0,
            )
        )
        assert report.num_servers == 1

    def test_summary_contains_key_figures(self):
        report = Dispatcher(NextFit()).dispatch(jobs())
        s = report.summary()
        assert "next-fit" in s and "servers" in s


class TestConcurrencyMeter:
    def test_observer_is_forwarded_to_the_driver(self):
        meter = ConcurrencyMeter()
        report = Dispatcher(FirstFit()).dispatch(jobs(), observers=[meter])
        # items 0 and 1 overlap on [0.5, 1.5): two servers at the peak
        assert meter.peak_open == report.num_servers == 2
        assert 0.0 < meter.mean_open <= meter.peak_open

    def test_same_meter_works_on_the_vector_engine(self):
        from repro.multidim import (
            VectorItem,
            VectorItemList,
            make_vector_algorithm,
            run_vector_packing,
        )

        meter = ConcurrencyMeter()
        items = VectorItemList(
            [
                VectorItem(0, (0.6, 0.6), 0.0, 2.0),
                VectorItem(1, (0.5, 0.5), 0.5, 1.5),
                VectorItem(2, (0.4, 0.4), 1.0, 3.0),
            ],
            capacity=(1.0, 1.0),
        )
        run_vector_packing(
            items, make_vector_algorithm("vector-first-fit"), observers=[meter]
        )
        assert meter.peak_open == 2
        assert 0.0 < meter.mean_open <= meter.peak_open


class TestInstanceType:
    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType("x", capacity=0.0)
        with pytest.raises(ValueError):
            InstanceType("x", hourly_price=-1.0)


class TestGamingEndToEnd:
    def test_dispatch_real_workload(self):
        report = Dispatcher(FirstFit()).dispatch(gaming_workload(150, seed=11))
        assert report.num_servers > 0
        assert report.total_cost > 0
        assert report.total_usage_time >= 0
