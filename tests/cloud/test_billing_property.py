"""Property-based tests for billing policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.billing import ContinuousBilling, HourlyBilling, PerSecondBilling
from repro.core.intervals import Interval

durations = st.floats(0.0, 1000.0, allow_nan=False).map(lambda x: round(x, 4))
starts = st.floats(0.0, 100.0, allow_nan=False).map(lambda x: round(x, 4))


class TestBillingProperties:
    @given(starts, durations)
    @settings(max_examples=100, deadline=None)
    def test_hourly_dominates_continuous(self, t0, d):
        iv = Interval(t0, t0 + d)
        assert HourlyBilling().billed_time(iv) >= ContinuousBilling().billed_time(iv) - 1e-9

    @given(starts, durations)
    @settings(max_examples=100, deadline=None)
    def test_per_second_dominates_continuous(self, t0, d):
        iv = Interval(t0, t0 + d)
        assert (
            PerSecondBilling().billed_time(iv)
            >= ContinuousBilling().billed_time(iv) - 1e-9
        )

    @given(starts, durations)
    @settings(max_examples=100, deadline=None)
    def test_hourly_overhead_bounded_by_one_quantum(self, t0, d):
        iv = Interval(t0, t0 + d)
        billed = HourlyBilling(quantum=1.0).billed_time(iv)
        assert billed <= iv.length + 1.0 + 1e-9

    @given(starts, durations, durations)
    @settings(max_examples=80, deadline=None)
    def test_continuous_additive(self, t0, d1, d2):
        """Continuous billing is additive over split usage periods."""
        c = ContinuousBilling(price_per_hour=2.0)
        whole = c.cost(Interval(t0, t0 + d1 + d2))
        split = c.cost(Interval(t0, t0 + d1)) + c.cost(Interval(t0 + d1, t0 + d1 + d2))
        assert whole == pytest.approx(split, abs=1e-6)

    @given(starts, durations)
    @settings(max_examples=80, deadline=None)
    def test_hourly_subadditive_under_splitting(self, t0, d):
        """Splitting a rental into two never reduces hourly cost."""
        h = HourlyBilling()
        mid = t0 + d / 2
        whole = h.billed_time(Interval(t0, t0 + d))
        split = h.billed_time(Interval(t0, mid)) + h.billed_time(Interval(mid, t0 + d))
        assert split >= whole - 1e-9

    @given(starts, durations, st.floats(0.1, 5.0).map(lambda x: round(x, 2)))
    @settings(max_examples=80, deadline=None)
    def test_costs_scale_with_price(self, t0, d, price):
        iv = Interval(t0, t0 + d)
        for policy_cls in (ContinuousBilling, HourlyBilling, PerSecondBilling):
            base = policy_cls(price_per_hour=1.0)
            scaled = policy_cls(price_per_hour=price)
            assert scaled.cost(iv) == pytest.approx(price * base.cost(iv), abs=1e-9)
