"""Tests for heterogeneous fleet dispatching."""

import pytest

from repro.cloud.billing import ContinuousBilling, HourlyBilling
from repro.cloud.fleet import (
    DEFAULT_FLEET_CATALOGUE,
    BestDensity,
    CheapestFitting,
    FleetDispatcher,
    SmallestFitting,
)
from repro.cloud.server import InstanceType
from repro.core.items import Item, ItemList
from repro.workloads.gaming import gaming_workload


def jobs(*tuples):
    return ItemList([Item(i, s, a, d) for i, (s, a, d) in enumerate(tuples)])


SMALL = InstanceType("s", capacity=0.5, hourly_price=0.6)
MEDIUM = InstanceType("m", capacity=1.0, hourly_price=1.0)
LARGE = InstanceType("l", capacity=2.0, hourly_price=1.8)
CAT = (SMALL, MEDIUM, LARGE)


class TestLaunchPolicies:
    def test_smallest_fitting(self):
        item = Item(0, 0.4, 0, 1)
        assert SmallestFitting().choose_type(CAT, item) is SMALL
        item = Item(0, 0.7, 0, 1)
        assert SmallestFitting().choose_type(CAT, item) is MEDIUM

    def test_cheapest_fitting(self):
        # price order: s (0.6) < m (1.0) < l (1.8)
        assert CheapestFitting().choose_type(CAT, Item(0, 0.4, 0, 1)) is SMALL
        assert CheapestFitting().choose_type(CAT, Item(0, 1.5, 0, 1)) is LARGE

    def test_best_density(self):
        # density: s 1.2, m 1.0, l 0.9 → large wins whenever feasible
        assert BestDensity().choose_type(CAT, Item(0, 0.1, 0, 1)) is LARGE

    def test_no_feasible_type_raises(self):
        with pytest.raises(ValueError, match="no instance type"):
            SmallestFitting().choose_type((SMALL,), Item(0, 0.9, 0, 1))


class TestFleetDispatcher:
    def test_oversized_job_rejected(self):
        d = FleetDispatcher((SMALL,))
        with pytest.raises(ValueError, match="exceeds"):
            d.dispatch(jobs((0.9, 0, 1)))

    def test_first_fit_across_types(self):
        # job 0 opens a small server; job 1 fits it and must reuse it
        d = FleetDispatcher(CAT, launch_policy=SmallestFitting())
        report = d.dispatch(jobs((0.2, 0, 4), (0.2, 1, 3)))
        assert report.num_servers == 1
        assert report.servers[0].instance_type is SMALL

    def test_launch_when_nothing_fits(self):
        d = FleetDispatcher(CAT, launch_policy=SmallestFitting())
        report = d.dispatch(jobs((0.5, 0, 4), (0.3, 1, 3)))
        # first job fills the small server exactly → second needs a new one
        assert report.num_servers == 2

    def test_large_server_consolidates(self):
        d = FleetDispatcher(CAT, launch_policy=BestDensity())
        report = d.dispatch(jobs((0.8, 0, 4), (0.8, 1, 3), (0.4, 2, 4)))
        # one large server (capacity 2) holds all three (peak 2.0)
        assert report.num_servers == 1
        assert report.servers[0].instance_type is LARGE

    def test_costs_use_type_price(self):
        d = FleetDispatcher((MEDIUM,), billing=ContinuousBilling())
        report = d.dispatch(jobs((0.5, 0, 3)))
        assert report.total_cost == pytest.approx(3.0 * MEDIUM.hourly_price)

    def test_hourly_billing_rounds_up(self):
        d = FleetDispatcher((MEDIUM,), billing=HourlyBilling())
        report = d.dispatch(jobs((0.5, 0.0, 2.5)))
        assert report.total_cost == pytest.approx(3.0)

    def test_all_jobs_served_and_servers_closed(self):
        stream = gaming_workload(150, seed=3)
        report = FleetDispatcher().dispatch(stream)
        served = sorted(j for s in report.servers for j in s.jobs)
        assert served == sorted(it.item_id for it in stream)
        assert all(not s.is_open for s in report.servers)

    def test_reports_aggregate_consistently(self):
        report = FleetDispatcher().dispatch(gaming_workload(100, seed=5))
        assert report.total_cost == pytest.approx(sum(report.costs))
        assert sum(report.servers_by_type().values()) == report.num_servers
        assert sum(report.cost_by_type().values()) == pytest.approx(report.total_cost)

    def test_empty_catalogue_rejected(self):
        with pytest.raises(ValueError):
            FleetDispatcher(())

    def test_capacity_never_violated(self):
        stream = gaming_workload(200, seed=9)
        report = FleetDispatcher(CAT).dispatch(stream)
        # replay levels per server from the job set
        for s in report.servers:
            events = []
            for jid in s.jobs:
                it = next(x for x in stream if x.item_id == jid)
                events.append((it.arrival, it.size))
                events.append((it.departure, -it.size))
            events.sort(key=lambda e: (e[0], e[1]))
            level = 0.0
            for _, delta in events:
                level += delta
                assert level <= s.instance_type.capacity + 1e-9
