"""Tests for the billing policies."""

import pytest

from repro.cloud.billing import ContinuousBilling, HourlyBilling, PerSecondBilling
from repro.core.intervals import Interval


class TestContinuous:
    def test_exact_proportionality(self):
        b = ContinuousBilling(price_per_hour=2.0)
        assert b.cost(Interval(1.0, 3.5)) == pytest.approx(5.0)
        assert b.billed_time(Interval(1.0, 3.5)) == 2.5

    def test_zero_usage(self):
        assert ContinuousBilling().cost(Interval(1.0, 1.0)) == 0.0


class TestHourly:
    def test_rounds_up(self):
        b = HourlyBilling()
        assert b.billed_time(Interval(0.0, 0.1)) == 1.0
        assert b.billed_time(Interval(0.0, 1.5)) == 2.0

    def test_exact_hours_not_rounded(self):
        b = HourlyBilling()
        assert b.billed_time(Interval(0.0, 3.0)) == 3.0
        # float-noise exact multiple (0.1+0.2 style)
        assert b.billed_time(Interval(0.0, 0.1 + 0.2 + 2.7)) == 3.0

    def test_custom_quantum(self):
        b = HourlyBilling(quantum=0.5)
        assert b.billed_time(Interval(0.0, 0.6)) == 1.0
        assert b.billed_time(Interval(0.0, 0.5)) == 0.5

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            HourlyBilling(quantum=0.0)

    def test_price(self):
        b = HourlyBilling(price_per_hour=3.0)
        assert b.cost(Interval(0.0, 1.2)) == pytest.approx(6.0)

    def test_never_below_continuous(self):
        b = HourlyBilling()
        c = ContinuousBilling()
        for length in (0.1, 0.9, 1.0, 1.01, 7.3):
            iv = Interval(0.0, length)
            assert b.billed_time(iv) >= c.billed_time(iv) - 1e-12


class TestPerSecond:
    def test_minimum_applies(self):
        b = PerSecondBilling(minimum_hours=0.1)
        assert b.billed_time(Interval(0.0, 0.01)) == 0.1

    def test_above_minimum_exact(self):
        b = PerSecondBilling(minimum_hours=0.1)
        assert b.billed_time(Interval(0.0, 2.5)) == 2.5

    def test_zero_usage_free(self):
        assert PerSecondBilling().billed_time(Interval(2.0, 2.0)) == 0.0
