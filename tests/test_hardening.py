"""Hardening: pathological inputs the library must survive.

Extreme-but-legal instances: microscopic sizes, huge µ, thousands of
simultaneous arrivals, float-noise capacity boundaries, large streams.
"""

import pytest

from repro.algorithms import ALGORITHM_REGISTRY, FirstFit, make_algorithm
from repro.analysis.verification import verify_analysis
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.opt.lower_bounds import fractional_ceiling_bound
from repro.opt.opt_total import opt_total
from repro.workloads.random_workloads import poisson_workload
from repro.workloads.traces import from_json, to_json


class TestExtremeSizes:
    def test_microscopic_items(self):
        items = ItemList([Item(i, 1e-6, 0.0, 1.0) for i in range(100)])
        result = run_packing(items, FirstFit())
        assert result.num_bins == 1
        assert result.total_usage_time == pytest.approx(1.0)

    def test_mixed_micro_and_full(self):
        items = ItemList(
            [Item(0, 1.0, 0.0, 2.0)] + [Item(i, 1e-9, 0.0, 2.0) for i in range(1, 50)]
        )
        result = run_packing(items, FirstFit())
        # the full item excludes everything; micro items share one bin
        assert result.num_bins == 2

    def test_exact_boundary_fill_with_float_noise(self):
        # 0.1 + 0.2 + 0.7 != 1.0 in floats; must still fit one bin
        items = ItemList(
            [Item(0, 0.1, 0.0, 1.0), Item(1, 0.2, 0.0, 1.0), Item(2, 0.7, 0.0, 1.0)]
        )
        result = run_packing(items, FirstFit())
        assert result.num_bins == 1

    def test_many_exact_thirds(self):
        items = ItemList([Item(i, 1.0 / 3.0, 0.0, 1.0) for i in range(9)])
        result = run_packing(items, FirstFit())
        assert result.num_bins == 3


class TestExtremeDurations:
    def test_huge_mu(self):
        items = ItemList(
            [Item(0, 0.4, 0.0, 1e6), Item(1, 0.4, 0.0, 1.0)]
        )
        assert items.mu == pytest.approx(1e6)
        result = run_packing(items, FirstFit())
        assert result.total_usage_time == pytest.approx(1e6)
        # the closed-form Theorem-1 chain must not overflow or misfire
        report = verify_analysis(result, check_lemma2=False)
        assert report.closed_form_slack >= -1e-6

    def test_tiny_durations(self):
        items = ItemList([Item(i, 0.3, i * 1e-6, (i + 1) * 1e-6) for i in range(50)])
        result = run_packing(items, FirstFit())
        assert result.num_bins >= 1
        assert result.total_usage_time == pytest.approx(50e-6, rel=1e-6)


class TestMassSimultaneity:
    def test_thousand_simultaneous_arrivals(self):
        items = ItemList([Item(i, 0.01, 0.0, 1.0) for i in range(1000)])
        result = run_packing(items, FirstFit())
        assert result.num_bins == 10
        assert result.max_concurrent_bins == 10

    def test_simultaneous_arrival_and_departure_chains(self):
        # back-to-back unit jobs: [k, k+1) for k in range(100), one size
        items = ItemList([Item(i, 1.0, float(i), float(i + 1)) for i in range(100)])
        result = run_packing(items, FirstFit())
        assert result.num_bins == 100  # bins close and are never reused
        assert result.max_concurrent_bins == 1


class TestLargeStreams:
    def test_ten_thousand_jobs_smoke(self):
        items = poisson_workload(10_000, seed=1, mu_target=8.0, arrival_rate=5.0)
        result = run_packing(items, FirstFit())
        assert set(result.item_bin) == {it.item_id for it in items}
        assert result.total_usage_time >= items.span

    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_all_algorithms_large_smoke(self, name):
        items = poisson_workload(2_000, seed=2, mu_target=6.0, arrival_rate=4.0)
        result = run_packing(items, make_algorithm(name))
        assert result.num_bins > 0


class TestNumericsRoundTrips:
    def test_trace_roundtrip_extreme_floats(self):
        items = ItemList(
            [
                Item(0, 1e-6, 0.0, 1e6),
                Item(1, 1.0, 1e-9, 1.0),
                Item(2, 0.3333333333333333, 1.0 / 3.0, 2.0 / 3.0 + 1.0),
            ]
        )
        back = from_json(to_json(items))
        for a, b in zip(items, back):
            assert a.size == b.size
            assert a.arrival == b.arrival
            assert a.departure == b.departure

    def test_fractional_bound_huge_counts(self):
        items = ItemList([Item(i, 0.001, 0.0, 1.0) for i in range(999)])
        # 0.999 total → exactly 1 bin, no float round-up to 2
        assert fractional_ceiling_bound(items) == pytest.approx(1.0)

    def test_opt_total_on_equal_sizes_scales(self):
        """Equal sizes make B&B symmetric — must stay fast and exact."""
        items = ItemList([Item(i, 0.25, float(i % 7), float(i % 7) + 2.0)
                          for i in range(60)])
        opt = opt_total(items)
        assert opt.exact
