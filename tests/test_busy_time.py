"""Tests for bounded-parallelism busy-time scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.offline.busy_time import (
    BusyTimeJob,
    busy_time_lower_bound,
    busy_time_of,
    exact_busy_time,
    greedy_tracking,
    to_capacity_instance,
)

from repro.offline.solvers import greedy_offline


def jobs_(*spans):
    return [BusyTimeJob(i, a, b) for i, (a, b) in enumerate(spans)]


def busy_jobs(max_n=12):
    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_n))
        out = []
        for i in range(n):
            a = round(draw(st.floats(0, 20, allow_nan=False)), 2)
            d = round(draw(st.floats(0.5, 6, allow_nan=False)), 2)
            out.append(BusyTimeJob(i, a, a + d))
        return out

    return build()


class TestModel:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            BusyTimeJob(0, 2.0, 2.0)

    def test_capacity_instance(self):
        items = to_capacity_instance(jobs_((0, 2), (1, 3)), g=4)
        assert all(it.size == pytest.approx(0.25) for it in items)
        with pytest.raises(ValueError):
            to_capacity_instance([], g=0)

    def test_lower_bound_span_and_mass(self):
        js = jobs_((0, 10), (0, 1), (0, 1))
        # span = 10; mass = 12/2 = 6 → LB = 10
        assert busy_time_lower_bound(js, g=2) == pytest.approx(10.0)
        # with g = 1: mass = 12 > span → LB = 12
        assert busy_time_lower_bound(js, g=1) == pytest.approx(12.0)

    def test_lower_bound_empty(self):
        assert busy_time_lower_bound([], g=3) == 0.0


class TestGreedyTracking:
    def test_respects_parallelism(self):
        js = jobs_((0, 2), (0, 2), (0, 2))
        machines = greedy_tracking(js, g=2)
        assert len(machines) == 2  # 2 + 1

    def test_consolidates_nested_jobs(self):
        js = jobs_((0, 10), (1, 2), (3, 4), (5, 6))
        machines = greedy_tracking(js, g=2)
        # the long job anchors a machine; the shorts never overlap each
        # other, so with g=2 they all nest inside it at zero extra cost
        assert len(machines) == 1
        assert busy_time_of(machines) == pytest.approx(10.0)

    def test_g1_is_one_job_per_machine_at_a_time(self):
        js = jobs_((0, 2), (1, 3))
        machines = greedy_tracking(js, g=1)
        assert len(machines) == 2

    @given(busy_jobs())
    @settings(max_examples=60, deadline=None)
    def test_greedy_within_4x_of_lower_bound(self, js):
        """The Flammini et al. guarantee, against the certified LB."""
        for g in (1, 2, 3):
            machines = greedy_tracking(js, g)
            cost = busy_time_of(machines)
            lb = busy_time_lower_bound(js, g)
            assert cost <= 4.0 * lb + 1e-7

    @given(busy_jobs())
    @settings(max_examples=40, deadline=None)
    def test_parallelism_never_violated(self, js):
        g = 2
        for m in greedy_tracking(js, g):
            events = []
            for j in m:
                events.append((j.start, 1))
                events.append((j.end, -1))
            events.sort(key=lambda e: (e[0], e[1]))
            load = 0
            for _, delta in events:
                load += delta
                assert load <= g


class TestExactAndEquivalence:
    def test_exact_on_small_instance(self):
        js = jobs_((0, 2), (0, 2), (1, 3))
        cost, certified = exact_busy_time(js, g=2)
        assert certified
        # optimal: {(0,2),(1,3)} on one machine (busy 3), {(0,2)} on
        # another (busy 2) → 5;  or {(0,2),(0,2)} (busy 2) + {(1,3)}
        # (busy 2) → 4 — the latter is better
        assert cost == pytest.approx(4.0)

    @given(busy_jobs(max_n=8))
    @settings(max_examples=25, deadline=None)
    def test_exact_at_most_greedy(self, js):
        g = 2
        cost, certified = exact_busy_time(js, g)
        assert certified
        assert cost <= busy_time_of(greedy_tracking(js, g)) + 1e-7
        assert cost >= busy_time_lower_bound(js, g) - 1e-7

    @given(busy_jobs(max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_capacity_model_equivalence(self, js):
        """Greedy on the busy-time side and the capacity-model greedy
        both produce feasible solutions of the same problem; the exact
        optimum computed through the capacity model bounds both."""
        g = 3
        cost_bt = busy_time_of(greedy_tracking(js, g))
        items = to_capacity_instance(js, g)
        cost_cap = greedy_offline(items).cost()
        opt, certified = exact_busy_time(js, g, node_budget=200_000)
        if certified:
            assert opt <= cost_bt + 1e-7
            assert opt <= cost_cap + 1e-7
