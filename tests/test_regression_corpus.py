"""Regression corpus: frozen traces with pinned exact costs.

Seven instances (the paper's gadgets at fixed parameters, random and
bursty workloads, and an adaptive-game instance personalised against
First Fit) live under ``tests/data/`` with the exact cost of every
registered algorithm and the certified OPT bracket recorded at freeze
time.  Any behavioural change to an algorithm, the event ordering, the
capacity tolerance or the OPT solver shows up here as an exact-value
diff — on purpose.
"""

import json
from pathlib import Path

import pytest

from repro.algorithms import ALGORITHM_REGISTRY, make_algorithm
from repro.core.packing import run_packing
from repro.opt.opt_total import opt_total
from repro.workloads.traces import load_trace

DATA = Path(__file__).parent / "data"

with open(DATA / "expected_costs.json") as f:
    EXPECTED = json.load(f)

TRACES = sorted(EXPECTED)


@pytest.fixture(scope="module")
def instances():
    return {name: load_trace(DATA / f"{name}.json") for name in TRACES}


class TestCorpusIntegrity:
    def test_all_trace_files_present(self):
        for name in TRACES:
            assert (DATA / f"{name}.json").exists(), name

    def test_expected_covers_all_algorithms(self):
        for name, row in EXPECTED.items():
            assert set(ALGORITHM_REGISTRY) <= set(row), name


@pytest.mark.parametrize("trace_name", TRACES)
class TestPinnedCosts:
    def test_algorithm_costs_exact(self, trace_name, instances):
        items = instances[trace_name]
        row = EXPECTED[trace_name]
        for algo in sorted(ALGORITHM_REGISTRY):
            result = run_packing(items, make_algorithm(algo))
            assert result.total_usage_time == pytest.approx(
                row[algo]["usage"], abs=1e-7
            ), f"{trace_name}/{algo} usage drifted"
            assert result.num_bins == row[algo]["bins"], (
                f"{trace_name}/{algo} bin count drifted"
            )

    def test_opt_bracket_exact(self, trace_name, instances):
        items = instances[trace_name]
        row = EXPECTED[trace_name]["_opt"]
        opt = opt_total(items, node_budget=200_000)
        assert opt.lower == pytest.approx(row["lower"], abs=1e-7)
        assert opt.upper == pytest.approx(row["upper"], abs=1e-7)
        assert opt.exact == row["exact"]

    def test_theorem1_on_corpus(self, trace_name, instances):
        items = instances[trace_name]
        row = EXPECTED[trace_name]
        ff = row["first-fit"]["usage"]
        assert ff <= (items.mu + 4.0) * row["_opt"]["lower"] + 1e-7
