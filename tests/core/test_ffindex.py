"""Unit tests for the first-fit segment tree (`repro.core.ffindex`).

Every query is checked against a brute-force oracle over the same
(bin, level) map, across randomized open/update/close schedules long
enough to force several compaction rebuilds.
"""

from __future__ import annotations

import random

from repro.core.ffindex import FirstFitIndex

BOUND = 1.0 + 1e-9


class Oracle:
    """Dict-of-levels reference for every index query."""

    def __init__(self):
        self.levels: dict[int, float] = {}  # insertion order == index order

    def first_fit(self, size, bound):
        for idx, lvl in self.levels.items():
            if lvl + size <= bound:
                return idx
        return None

    def last_fit(self, size, bound):
        found = None
        for idx, lvl in self.levels.items():
            if lvl + size <= bound:
                found = idx
        return found

    def min_level(self, size, bound):
        worst = None
        for idx, lvl in self.levels.items():
            if lvl + size <= bound and (worst is None or lvl < self.levels[worst]):
                worst = idx
        return worst

    def max_feasible(self, size, bound):
        best = None
        for idx, lvl in self.levels.items():
            if lvl + size <= bound and (best is None or lvl > self.levels[best]):
                best = idx
        return best


def check_all_queries(index, oracle, sizes):
    for size in sizes:
        assert index.first_fit(size, BOUND) == oracle.first_fit(size, BOUND)
        assert index.last_fit(size, BOUND) == oracle.last_fit(size, BOUND)
        assert index.min_level(size, BOUND) == oracle.min_level(size, BOUND)
        assert index.max_feasible(size, BOUND) == oracle.max_feasible(size, BOUND)


def test_empty_index_returns_none():
    index = FirstFitIndex()
    assert index.first_fit(0.1, BOUND) is None
    assert index.last_fit(0.1, BOUND) is None
    assert index.min_level(0.1, BOUND) is None
    assert index.max_feasible(0.1, BOUND) is None
    assert len(index) == 0


def test_single_bin_feasibility_boundary():
    index = FirstFitIndex()
    index.append(0, 0.5)
    assert index.first_fit(0.5, BOUND) == 0  # 0.5 + 0.5 <= 1 + eps
    assert index.first_fit(0.6, BOUND) is None
    index.close(0)
    assert index.first_fit(0.1, BOUND) is None


def test_first_fit_prefers_earliest_on_equal_levels():
    index = FirstFitIndex()
    for i in range(8):
        index.append(i, 0.5)
    assert index.first_fit(0.3, BOUND) == 0
    assert index.last_fit(0.3, BOUND) == 7
    assert index.min_level(0.3, BOUND) == 0  # leftmost at the global min
    assert index.max_feasible(0.3, BOUND) == 0  # leftmost at the max


def test_close_reopens_nothing():
    index = FirstFitIndex()
    index.append(0, 0.2)
    index.append(1, 0.9)
    index.close(0)
    assert index.first_fit(0.05, BOUND) == 1
    assert not index.has(0)
    assert index.has(1)


def test_randomized_against_oracle_with_rebuilds():
    rng = random.Random(42)
    index = FirstFitIndex()
    oracle = Oracle()
    next_idx = 0
    # enough churn to overflow the 64-leaf initial tree repeatedly and
    # force compaction rebuilds with dead slots present
    for step in range(3000):
        op = rng.random()
        if op < 0.45 or not oracle.levels:
            lvl = rng.choice([0.0, rng.uniform(0, 1), 0.5, 1.0 - 1e-12])
            index.append(next_idx, lvl)
            oracle.levels[next_idx] = lvl
            next_idx += 1
        elif op < 0.8:
            idx = rng.choice(list(oracle.levels))
            lvl = rng.uniform(0, 1)
            index.set_level(idx, lvl)
            oracle.levels[idx] = lvl
        else:
            idx = rng.choice(list(oracle.levels))
            index.close(idx)
            del oracle.levels[idx]
        if step % 97 == 0:
            check_all_queries(
                index, oracle, [0.0, 1e-12, rng.uniform(0, 1), 0.5, 1.0, 1.5]
            )
        assert len(index) == len(oracle.levels)
    check_all_queries(index, oracle, [0.1 * k for k in range(12)])


def test_exact_float_semantics_match_scan():
    """Near-tie levels differing in the last ulp must resolve exactly."""
    index = FirstFitIndex()
    a = 0.1 + 0.2  # 0.30000000000000004
    b = 0.3
    index.append(0, a)
    index.append(1, b)
    # max_feasible: a > b by one ulp, so bin 0 wins outright
    assert index.max_feasible(0.1, BOUND) == 0
    # min_level: b < a, bin 1 is the unique min
    assert index.min_level(0.1, BOUND) == 1
    # the feasibility predicate itself is evaluated exactly
    tight = 1.0 - a
    assert index.first_fit(tight, 1.0) == (0 if a + tight <= 1.0 else 1)
