"""Tests for repro.core.intervals: half-open interval algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import (
    EMPTY_INTERVAL,
    Interval,
    coverage_at,
    intervals_intersect,
    merge_intervals,
    span,
    total_length,
    union_length,
)


def ivs(max_n=12):
    """Strategy: lists of intervals with rounded endpoints."""
    endpoint = st.floats(-50, 50, allow_nan=False).map(lambda x: round(x, 2))
    one = st.tuples(endpoint, endpoint).map(lambda t: Interval(min(t), max(t)))
    return st.lists(one, max_size=max_n)


class TestIntervalBasics:
    def test_length(self):
        assert Interval(1.0, 3.5).length == 2.5

    def test_empty_interval_has_zero_length(self):
        assert Interval(2.0, 2.0).length == 0.0
        assert Interval(3.0, 1.0).length == 0.0

    def test_is_empty(self):
        assert Interval(2.0, 2.0).is_empty
        assert Interval(3.0, 2.0).is_empty
        assert not Interval(2.0, 2.1).is_empty

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)
        with pytest.raises(ValueError):
            Interval(0.0, math.nan)

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)  # left endpoint included
        assert iv.contains(1.5)
        assert not iv.contains(2.0)  # right endpoint excluded
        assert not iv.contains(0.999)

    def test_ordering_is_lexicographic(self):
        assert Interval(0, 1) < Interval(0, 2) < Interval(1, 1)

    def test_iter_unpacks(self):
        left, right = Interval(3.0, 7.0)
        assert (left, right) == (3.0, 7.0)

    def test_shift(self):
        assert Interval(1, 2).shift(2.5) == Interval(3.5, 4.5)

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(3, 4)) == Interval(0, 4)
        assert Interval(0, 1).hull(EMPTY_INTERVAL) == Interval(0, 1)
        assert EMPTY_INTERVAL.hull(Interval(2, 3)) == Interval(2, 3)


class TestIntersection:
    def test_touching_intervals_do_not_intersect(self):
        # the load-bearing half-open property: [a,b) ∩ [b,c) = ∅
        assert not Interval(0, 1).intersects(Interval(1, 2))
        assert Interval(0, 1).intersection(Interval(1, 2)).is_empty

    def test_overlap(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 2).intersects(Interval(1, 3))

    def test_containment_intersection(self):
        assert Interval(0, 10).intersection(Interval(2, 3)) == Interval(2, 3)

    def test_empty_never_intersects(self):
        assert not EMPTY_INTERVAL.intersects(Interval(-100, 100))
        assert not Interval(-100, 100).intersects(EMPTY_INTERVAL)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert Interval(0, 10).contains_interval(Interval(2, 3))
        assert not Interval(0, 10).contains_interval(Interval(2, 11))
        # empty intervals are contained everywhere
        assert Interval(5, 6).contains_interval(EMPTY_INTERVAL)

    @given(ivs(), ivs())
    def test_intersects_matches_bruteforce(self, a, b):
        brute = any(x.intersects(y) for x in a for y in b)
        assert intervals_intersect(a, b) == brute


class TestMergeAndSpan:
    def test_merge_overlapping(self):
        merged = merge_intervals([Interval(0, 2), Interval(1, 3)])
        assert merged == [Interval(0, 3)]

    def test_merge_touching(self):
        merged = merge_intervals([Interval(0, 1), Interval(1, 2)])
        assert merged == [Interval(0, 2)]

    def test_merge_keeps_gaps(self):
        merged = merge_intervals([Interval(0, 1), Interval(2, 3)])
        assert merged == [Interval(0, 1), Interval(2, 3)]

    def test_merge_drops_empties(self):
        assert merge_intervals([EMPTY_INTERVAL, Interval(5, 5)]) == []

    def test_merge_unsorted_input(self):
        merged = merge_intervals([Interval(4, 5), Interval(0, 1), Interval(0.5, 2)])
        assert merged == [Interval(0, 2), Interval(4, 5)]

    def test_span_figure1_example(self):
        # Figure 1 shape: two overlapping + one disjoint
        items = [Interval(0, 2), Interval(1, 3), Interval(4, 6)]
        assert span(items) == 5.0

    def test_span_empty(self):
        assert span([]) == 0.0

    def test_total_length_counts_multiplicity(self):
        assert total_length([Interval(0, 2), Interval(1, 3)]) == 4.0

    @given(ivs())
    def test_union_length_bounds(self, intervals):
        u = union_length(intervals)
        assert u <= total_length(intervals) + 1e-9
        if intervals:
            assert u >= max(iv.length for iv in intervals) - 1e-9

    @given(ivs())
    def test_merged_is_disjoint_and_sorted(self, intervals):
        merged = merge_intervals(intervals)
        for a, b in zip(merged, merged[1:]):
            assert a.right < b.left  # strictly separated (touching coalesced)

    @given(ivs())
    def test_merge_preserves_union_length(self, intervals):
        assert union_length(intervals) == pytest.approx(
            sum(iv.length for iv in merge_intervals(intervals))
        )

    @given(ivs(), st.floats(-60, 60, allow_nan=False))
    def test_coverage_consistent_with_merge(self, intervals, t):
        covered = coverage_at(intervals, t) > 0
        in_merged = any(iv.contains(t) for iv in merge_intervals(intervals))
        assert covered == in_merged
