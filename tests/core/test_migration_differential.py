"""Migration differential suite: the acceptance gates for repack-ff.

Two contracts, pinned bit-for-bit (exact floats, never approx):

1. **budget=0 is plain First Fit.**  A :class:`BudgetedRepack` with a
   zero move budget must produce the *identical* packing to
   :class:`FirstFit` on every instance in the frozen corpus — same
   ``item_bin`` map, same usage time, same bin count — on every engine
   path (default adaptive index, reference scans, forced tree) for both
   the scalar and vector engines.  This is what makes the migration
   engine a pure extension: switched off, it vanishes.

2. **The index is still a pure accelerator under migration.**  With a
   nonzero budget the planner runs index-free (linear scans only), so
   the indexed and reference paths must keep producing identical
   packings even while migrations hammer the index's remove→reinsert
   lanes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.core.state as state_mod
from repro.algorithms import make_algorithm
from repro.algorithms.first_fit import FirstFit
from repro.algorithms.migration import BudgetedRepack
from repro.core.packing import run_packing
from repro.multidim import (
    make_vector_algorithm,
    run_vector_packing,
    vector_workload,
)
from repro.multidim.algorithms import VectorBudgetedRepack, VectorFirstFit
from repro.workloads.random_workloads import poisson_workload
from repro.workloads.traces import load_trace

DATA = Path(__file__).parent.parent / "data"
CORPUS = sorted(p for p in DATA.glob("*.json") if p.name != "expected_costs.json")

#: high-churn instances: rates high enough that evacuations actually
#: fire (FF packs tightly; sparse fleets rarely yield full evacuations)
CHURN = [
    poisson_workload(300, seed=3, mu_target=6.0, arrival_rate=15.0),
    poisson_workload(400, seed=11, mu_target=8.0, arrival_rate=200.0),
]


@pytest.fixture
def forced_tree(monkeypatch):
    monkeypatch.setattr(state_mod, "INDEX_THRESHOLD", 1)
    monkeypatch.setattr(state_mod, "_BEST_FIT_TREE_MIN", 1)


def assert_same_packing(a, b):
    assert a.item_bin == b.item_bin, "placements diverged"
    assert a.total_usage_time == b.total_usage_time  # exact, no approx
    assert a.num_bins == b.num_bins


class TestBudgetZeroIsFirstFit:
    """Contract 1: budget=0 repack-ff ≡ plain FF, on every path."""

    @pytest.mark.parametrize("trace", CORPUS, ids=lambda p: p.stem)
    @pytest.mark.parametrize("indexed", [True, False], ids=["default", "reference"])
    def test_corpus_scalar(self, trace, indexed):
        items = load_trace(trace)
        ff = run_packing(items, FirstFit(), indexed=indexed)
        rp = run_packing(items, BudgetedRepack(budget=0), indexed=indexed)
        assert_same_packing(ff, rp)

    @pytest.mark.parametrize("trace", CORPUS, ids=lambda p: p.stem)
    def test_corpus_scalar_forced_tree(self, trace, forced_tree):
        items = load_trace(trace)
        ff = run_packing(items, FirstFit(), indexed=True)
        rp = run_packing(items, BudgetedRepack(budget=0), indexed=True)
        assert_same_packing(ff, rp)

    @pytest.mark.parametrize("indexed", [True, False], ids=["default", "reference"])
    def test_churn_scalar(self, indexed):
        for items in CHURN:
            ff = run_packing(items, FirstFit(), indexed=indexed)
            rp = run_packing(items, BudgetedRepack(budget=0), indexed=indexed)
            assert_same_packing(ff, rp)

    @pytest.mark.parametrize("indexed", [True, False], ids=["default", "reference"])
    def test_vector(self, indexed):
        items = vector_workload(300, seed=7, dimensions=2, arrival_rate=30.0)
        ff = run_vector_packing(items, VectorFirstFit(), indexed=indexed)
        rp = run_vector_packing(
            items, VectorBudgetedRepack(budget=0), indexed=indexed
        )
        assert_same_packing(ff, rp)

    def test_vector_forced_tree(self, forced_tree):
        items = vector_workload(200, seed=13, dimensions=2, arrival_rate=30.0)
        ff = run_vector_packing(items, VectorFirstFit(), indexed=True)
        rp = run_vector_packing(items, VectorBudgetedRepack(budget=0), indexed=True)
        assert_same_packing(ff, rp)

    def test_registry_factories_agree(self):
        """The registry names build the same zero-budget equivalence."""
        items = CHURN[0]
        ff = run_packing(items, make_algorithm("first-fit"))
        algo = make_algorithm("repack-ff")
        algo.budget = 0
        assert_same_packing(ff, run_packing(items, algo))


class TestIndexedMatchesReferenceUnderMigration:
    """Contract 2: indexed ≡ reference while migrations run."""

    @pytest.mark.parametrize("budget", [1, 2, 4, 8])
    def test_scalar_budgets(self, budget):
        for items in CHURN:
            fast = run_packing(items, BudgetedRepack(budget=budget), indexed=True)
            ref = run_packing(items, BudgetedRepack(budget=budget), indexed=False)
            assert_same_packing(fast, ref)

    @pytest.mark.parametrize("budget", [2, 4])
    def test_scalar_forced_tree(self, budget, forced_tree):
        for items in CHURN:
            fast = run_packing(items, BudgetedRepack(budget=budget), indexed=True)
            ref = run_packing(items, BudgetedRepack(budget=budget), indexed=False)
            assert_same_packing(fast, ref)

    @pytest.mark.parametrize("trace", CORPUS, ids=lambda p: p.stem)
    def test_corpus_with_budget(self, trace):
        items = load_trace(trace)
        fast = run_packing(items, BudgetedRepack(budget=4), indexed=True)
        ref = run_packing(items, BudgetedRepack(budget=4), indexed=False)
        assert_same_packing(fast, ref)

    @pytest.mark.parametrize("budget", [2, 4])
    def test_vector_budgets(self, budget):
        items = vector_workload(300, seed=7, dimensions=2, arrival_rate=30.0)
        fast = run_vector_packing(
            items, VectorBudgetedRepack(budget=budget), indexed=True
        )
        ref = run_vector_packing(
            items, VectorBudgetedRepack(budget=budget), indexed=False
        )
        assert_same_packing(fast, ref)

    def test_vector_forced_tree(self, forced_tree):
        items = vector_workload(200, seed=13, dimensions=2, arrival_rate=30.0)
        fast = run_vector_packing(items, VectorBudgetedRepack(budget=4), indexed=True)
        ref = run_vector_packing(items, VectorBudgetedRepack(budget=4), indexed=False)
        assert_same_packing(fast, ref)

    def test_churn_instances_actually_migrate(self):
        """Guard the guard: contract 2 is vacuous if no moves happen."""
        for items in CHURN:
            policy = BudgetedRepack(budget=4)
            run_packing(items, policy)
            assert policy.moves > 0
        vpolicy = VectorBudgetedRepack(budget=4)
        run_vector_packing(
            vector_workload(300, seed=7, dimensions=2, arrival_rate=30.0), vpolicy
        )
        assert vpolicy.moves > 0
