"""Tests for repro.core.state: the PackingState bookkeeping."""

import pytest

from repro.core.items import Item
from repro.core.state import PackingState


class TestPackingState:
    def test_open_new_bin_assigns_sequential_indices(self):
        s = PackingState()
        b0, b1, b2 = s.open_new_bin(), s.open_new_bin(), s.open_new_bin()
        assert [b0.index, b1.index, b2.index] == [0, 1, 2]
        assert s.num_bins_used == 3

    def test_place_into_new_bin_when_target_none(self):
        s = PackingState()
        s.now = 1.0
        b = s.place(Item(7, 0.5, 1.0, 2.0), None)
        assert b.index == 0
        assert s.bin_of(7) is b

    def test_open_bins_in_index_order(self):
        s = PackingState()
        items = [Item(i, 0.9, 0.0, 10.0) for i in range(3)]
        for it in items:
            s.place(it, None)
        assert [b.index for b in s.open_bins()] == [0, 1, 2]

    def test_depart_closes_and_removes_from_open(self):
        s = PackingState()
        it = Item(1, 0.5, 0.0, 2.0)
        s.place(it, None)
        s.now = 2.0
        b = s.depart(it)
        assert b.is_closed
        assert s.num_open == 0
        assert s.num_bins_used == 1

    def test_open_bins_fitting_filters_by_size(self):
        s = PackingState()
        s.place(Item(1, 0.9, 0.0, 10.0), None)
        s.place(Item(2, 0.3, 0.0, 10.0), None)
        fitting = s.open_bins_fitting(0.5)
        assert [b.index for b in fitting] == [1]
        assert s.open_bins_fitting(0.05) == s.open_bins()

    def test_closed_bins_never_reappear(self):
        s = PackingState()
        it1 = Item(1, 0.5, 0.0, 1.0)
        s.place(it1, None)
        s.now = 1.0
        s.depart(it1)
        s.now = 2.0
        b = s.place(Item(2, 0.5, 2.0, 3.0), None)
        assert b.index == 1  # a fresh bin, not the closed one
        assert [x.index for x in s.open_bins()] == [1]

    def test_place_into_closed_bin_rejected(self):
        s = PackingState()
        it = Item(1, 0.5, 0.0, 1.0)
        b = s.place(it, None)
        s.now = 1.0
        s.depart(it)
        with pytest.raises(ValueError, match="closed"):
            s.place(Item(2, 0.2, 1.0, 2.0), b)

    def test_middle_bin_closure_preserves_order(self):
        s = PackingState()
        items = [Item(i, 0.9, 0.0, 10.0) for i in range(3)]
        for it in items:
            s.place(it, None)
        s.now = 5.0
        s.depart(items[1])
        assert [b.index for b in s.open_bins()] == [0, 2]
