"""Tests for repro.core.bins: bin lifecycle and level tracking."""

import pytest

from repro.core.bins import Bin
from repro.core.intervals import Interval
from repro.core.items import Item


def make_bin() -> Bin:
    return Bin(index=0, capacity=1.0)


class TestLifecycle:
    def test_new_bin_is_unopened(self):
        b = make_bin()
        assert not b.is_open
        assert not b.is_closed
        assert b.level == 0.0

    def test_first_placement_opens(self):
        b = make_bin()
        b.place(Item(1, 0.4, 0.0, 2.0), now=0.5)
        assert b.is_open
        assert b.opened_at == 0.5

    def test_last_departure_closes(self):
        b = make_bin()
        it = Item(1, 0.4, 0.0, 2.0)
        b.place(it, 0.0)
        b.remove(it, 2.0)
        assert b.is_closed
        assert b.usage_period == Interval(0.0, 2.0)
        assert b.usage_time == 2.0

    def test_usage_period_requires_closed(self):
        b = make_bin()
        with pytest.raises(ValueError):
            _ = b.usage_period
        b.place(Item(1, 0.4, 0.0, 2.0), 0.0)
        with pytest.raises(ValueError):
            _ = b.usage_period

    def test_place_into_closed_bin_rejected(self):
        b = make_bin()
        it = Item(1, 0.4, 0.0, 2.0)
        b.place(it, 0.0)
        b.remove(it, 2.0)
        with pytest.raises(ValueError, match="closed"):
            b.place(Item(2, 0.1, 2.0, 3.0), 2.0)


class TestCapacity:
    def test_fits(self):
        b = make_bin()
        b.place(Item(1, 0.7, 0.0, 2.0), 0.0)
        assert b.fits(Item(2, 0.3, 0.0, 2.0))  # exactly fills
        assert not b.fits(Item(3, 0.31, 0.0, 2.0))

    def test_fits_with_float_accumulation(self):
        # ten thirds-of-0.3 sum to 0.99999…; a 0.1 item must still fit
        b = make_bin()
        for i in range(9):
            b.place(Item(i, 0.1, 0.0, 2.0), 0.0)
        assert b.fits(Item(100, 0.1, 0.0, 2.0))

    def test_overfull_placement_raises(self):
        b = make_bin()
        b.place(Item(1, 0.7, 0.0, 2.0), 0.0)
        with pytest.raises(ValueError, match="does not fit"):
            b.place(Item(2, 0.5, 0.0, 2.0), 0.0)

    def test_residual(self):
        b = make_bin()
        b.place(Item(1, 0.7, 0.0, 2.0), 0.0)
        assert b.residual() == pytest.approx(0.3)


class TestLevelTracking:
    def test_level_updates(self):
        b = make_bin()
        i1, i2 = Item(1, 0.4, 0, 5), Item(2, 0.5, 0, 5)
        b.place(i1, 0.0)
        b.place(i2, 1.0)
        assert b.level == pytest.approx(0.9)
        b.remove(i1, 2.0)
        assert b.level == pytest.approx(0.5)

    def test_level_snaps_to_zero_on_close(self):
        b = make_bin()
        sizes = [0.1, 0.2, 0.3]
        items = [Item(i, s, 0, 5) for i, s in enumerate(sizes)]
        for it in items:
            b.place(it, 0.0)
        for it in items:
            b.remove(it, 5.0)
        assert b.level == 0.0  # exactly, no float residue

    def test_level_at_history(self):
        b = make_bin()
        i1, i2 = Item(1, 0.4, 0, 5), Item(2, 0.5, 0, 5)
        b.place(i1, 0.0)
        b.place(i2, 1.0)
        b.remove(i1, 3.0)
        b.remove(i2, 5.0)
        assert b.level_at(0.5) == pytest.approx(0.4)
        assert b.level_at(1.0) == pytest.approx(0.9)
        assert b.level_at(2.9) == pytest.approx(0.9)
        assert b.level_at(3.0) == pytest.approx(0.5)
        assert b.level_at(5.0) == 0.0
        assert b.level_at(-1.0) == 0.0

    def test_remove_unknown_item_raises(self):
        b = make_bin()
        b.place(Item(1, 0.4, 0, 5), 0.0)
        with pytest.raises(KeyError):
            b.remove(Item(2, 0.4, 0, 5), 1.0)

    def test_all_items_records_placement_order(self):
        b = make_bin()
        b.place(Item(2, 0.2, 0, 5), 0.0)
        b.place(Item(1, 0.2, 0, 5), 1.0)
        assert [it.item_id for it in b.all_items] == [2, 1]
