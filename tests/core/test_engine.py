"""Tests for the streaming simulation engine and collectors."""

import pytest

from repro.algorithms import FirstFit, NextFit
from repro.core.engine import (
    OpenBinsCollector,
    PlacementLogCollector,
    Snapshot,
    UtilizationCollector,
    simulate,
)
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing
from repro.workloads.random_workloads import poisson_workload


def sample():
    return ItemList(
        [Item(0, 0.6, 0.0, 2.0), Item(1, 0.5, 0.5, 1.5), Item(2, 0.4, 1.0, 3.0)]
    )


class TestSimulate:
    def test_one_snapshot_per_event(self):
        snaps = list(simulate(sample(), FirstFit()))
        assert len(snaps) == 2 * 3

    def test_matches_batch_driver(self):
        """The generator and run_packing agree on the final state."""
        items = poisson_workload(60, seed=2)
        snaps = list(simulate(items, FirstFit()))
        batch = run_packing(items, FirstFit())
        assert snaps[-1].num_bins_used == batch.num_bins
        assert snaps[-1].num_open_bins == 0

    def test_snapshot_times_monotone(self):
        items = poisson_workload(40, seed=3)
        times = [s.time for s in simulate(items, NextFit())]
        assert times == sorted(times)

    def test_total_level_conserved(self):
        """Total level after each event equals the active-size sweep."""
        items = sample()
        active = 0.0
        for snap in simulate(items, FirstFit()):
            if snap.event.kind.name == "ARRIVE":
                active += snap.event.item.size
            else:
                active -= snap.event.item.size
            assert snap.total_level == pytest.approx(max(active, 0.0))

    def test_utilization_bounds(self):
        for snap in simulate(poisson_workload(50, seed=5), FirstFit()):
            assert 0.0 <= snap.utilization <= 1.0 + 1e-9

    def test_lazy_evaluation(self):
        """The generator does work incrementally (can stop early)."""
        gen = simulate(poisson_workload(100, seed=7), FirstFit())
        first = next(gen)
        assert isinstance(first, Snapshot)
        gen.close()  # no error on abandoning the stream


class TestCollectors:
    def test_open_bins_collector_peak(self):
        c = OpenBinsCollector()
        c.consume(simulate(sample(), FirstFit()))
        batch = run_packing(sample(), FirstFit())
        assert c.peak == batch.max_concurrent_bins
        assert c.series[-1][1] == 0

    def test_utilization_collector_range(self):
        c = UtilizationCollector()
        c.consume(simulate(poisson_workload(80, seed=8), FirstFit()))
        assert 0.0 < c.mean_utilization <= 1.0

    def test_utilization_empty_stream(self):
        assert UtilizationCollector().mean_utilization == 0.0

    def test_placement_log(self):
        c = PlacementLogCollector()
        c.consume(simulate(sample(), FirstFit()))
        assert [e[1] for e in c.log] == [0, 1, 2]  # arrival order
        assert c.log[-1][2] == 2  # two bins used by then
