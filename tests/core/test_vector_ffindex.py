"""Unit tests for the vector first-fit segment tree.

:class:`~repro.core.ffindex.VectorFirstFitIndex` keeps one min-lane per
dimension; a subtree is prunable iff *some* dimension's minimum already
fails, and an inconclusive interior node is resolved by descending to
exact leaf checks.  The oracle is the reference scan the vector state
uses when unindexed: leftmost open bin feasible in every dimension,
compared with the exact same floats.
"""

from __future__ import annotations

import random

from repro.core.ffindex import VectorFirstFitIndex

BOUND2 = (1.0 + 1e-9, 1.0 + 1e-9)


class VectorOracle:
    """Dict-of-level-vectors reference for the first-fit query."""

    def __init__(self):
        self.levels: dict[int, tuple[float, ...]] = {}

    def first_fit(self, sizes, bounds):
        for idx, lvls in self.levels.items():
            if all(l + s <= c for l, s, c in zip(lvls, sizes, bounds)):
                return idx
        return None


def test_empty_index_returns_none():
    index = VectorFirstFitIndex(2)
    assert index.first_fit((0.1, 0.1), BOUND2) is None
    assert len(index) == 0


def test_append_defaults_to_zero_levels():
    index = VectorFirstFitIndex(3)
    index.append(0)
    assert index.first_fit((1.0, 1.0, 1.0), (1.0,) * 3) == 0


def test_per_dimension_feasibility_boundary():
    index = VectorFirstFitIndex(2)
    index.append(0, (0.5, 0.9))
    # fits in dim 0 but not dim 1 → infeasible
    assert index.first_fit((0.5, 0.2), BOUND2) is None
    # fits in both → feasible
    assert index.first_fit((0.5, 0.1), BOUND2) == 0


def test_leftmost_wins_among_feasible():
    index = VectorFirstFitIndex(2)
    index.append(0, (0.9, 0.1))  # infeasible in dim 0 for 0.3
    index.append(1, (0.2, 0.2))
    index.append(2, (0.0, 0.0))
    assert index.first_fit((0.3, 0.3), BOUND2) == 1


def test_close_and_set_level():
    index = VectorFirstFitIndex(2)
    index.append(0, (0.2, 0.2))
    index.append(1, (0.4, 0.4))
    assert index.first_fit((0.3, 0.3), BOUND2) == 0
    index.close(0)
    assert not index.has(0)
    assert index.has(1)
    assert index.first_fit((0.3, 0.3), BOUND2) == 1
    index.set_level(1, (0.9, 0.9))
    assert index.first_fit((0.3, 0.3), BOUND2) is None
    assert index.first_fit((0.1, 0.1), BOUND2) == 1


def test_interior_node_min_is_inconclusive_but_leaves_resolve():
    """Per-dimension minima can come from *different* bins.

    The subtree minimum vector (0.1, 0.1) looks feasible for (0.8, 0.8),
    but no single bin is — the query must descend and honestly return
    None rather than trust the interior aggregate.
    """
    index = VectorFirstFitIndex(2)
    index.append(0, (0.1, 0.9))
    index.append(1, (0.9, 0.1))
    assert index.first_fit((0.8, 0.8), BOUND2) is None
    # and a genuinely feasible later bin is still found
    index.append(2, (0.15, 0.15))
    assert index.first_fit((0.8, 0.8), BOUND2) == 2


def test_randomized_against_oracle_with_rebuilds():
    rng = random.Random(99)
    for dims in (1, 2, 3):
        index = VectorFirstFitIndex(dims)
        oracle = VectorOracle()
        bounds = tuple(1.0 + 1e-9 for _ in range(dims))
        next_idx = 0
        # enough churn to overflow the initial leaf array repeatedly and
        # force compaction rebuilds with dead slots present
        for step in range(2000):
            op = rng.random()
            if op < 0.45 or not oracle.levels:
                lvls = tuple(rng.uniform(0, 1) for _ in range(dims))
                index.append(next_idx, lvls)
                oracle.levels[next_idx] = lvls
                next_idx += 1
            elif op < 0.8:
                idx = rng.choice(list(oracle.levels))
                lvls = tuple(rng.uniform(0, 1) for _ in range(dims))
                index.set_level(idx, lvls)
                oracle.levels[idx] = lvls
            else:
                idx = rng.choice(list(oracle.levels))
                index.close(idx)
                del oracle.levels[idx]
            if step % 59 == 0:
                for _ in range(4):
                    sizes = tuple(rng.uniform(0, 1.2) for _ in range(dims))
                    assert index.first_fit(sizes, bounds) == oracle.first_fit(
                        sizes, bounds
                    )
            assert len(index) == len(oracle.levels)


def test_exact_float_semantics_match_scan():
    """Feasibility is evaluated with the scan's exact floats per dim."""
    index = VectorFirstFitIndex(2)
    a = 0.1 + 0.2  # 0.30000000000000004 — one ulp above 0.3
    index.append(0, (a, 0.0))
    tight = 1.0 - 0.3
    # dim 0: a + tight > 1.0 exactly (the extra ulp), dim 1 trivially fits
    assert index.first_fit((tight, 0.0), (1.0, 1.0)) == (
        0 if a + tight <= 1.0 else None
    )
