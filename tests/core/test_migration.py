"""Unit tests for the move-capable core: ``state.migrate`` + ``check_move``.

``migrate`` is the third first-class mutation next to ``place`` and
``depart``; these tests pin its contract on both resource types —
incremental accounting stays exact, the item→bin map follows the item,
the source bin closes when its last occupant leaves, and the adaptive
first-fit index remains query-consistent with the reference scans after
arbitrary remove→reinsert traffic.
"""

from __future__ import annotations

import pytest

import repro.core.state as state_mod
from repro.algorithms.migration import BudgetedRepack, plan_evacuation_moves
from repro.core.driver import check_move
from repro.core.items import Item
from repro.core.packing import run_packing
from repro.core.state import PackingState
from repro.multidim.items import VectorItem
from repro.multidim.state import VectorPackingState
from repro.workloads.random_workloads import poisson_workload


def _item(item_id: int, size: float, arrival: float = 0.0, departure: float = 100.0):
    return Item(item_id=item_id, size=size, arrival=arrival, departure=departure)


def _vitem(item_id: int, sizes, arrival: float = 0.0, departure: float = 100.0):
    return VectorItem(
        item_id=item_id, sizes=sizes, arrival=arrival, departure=departure
    )


@pytest.fixture
def forced_index(monkeypatch):
    monkeypatch.setattr(state_mod, "INDEX_THRESHOLD", 1)
    monkeypatch.setattr(state_mod, "_BEST_FIT_TREE_MIN", 1)


class TestScalarMigrate:
    def _two_bins(self, indexed=False):
        """Bin 0 holding items 1 (0.3) and 2 (0.2); bin 1 holding item 3 (0.4)."""
        state = PackingState(indexed=indexed)
        state.now = 0.0
        a, b, c = _item(1, 0.3), _item(2, 0.2), _item(3, 0.4)
        state.place(a, None)
        state.place(b, state.bins[0])
        state.place(c, None)
        return state, a, b, c

    def test_moves_item_and_keeps_accounting_exact(self):
        state, a, b, c = self._two_bins()
        state.now = 1.0
        src = state.migrate(b, state.bins[1])
        assert src is state.bins[0]
        assert state.item_bin[2] == 1
        assert state.bins[0].level == pytest.approx(0.3)
        assert state.bins[1].level == pytest.approx(0.6)
        assert state.total_level == pytest.approx(0.9)
        assert state.num_open == 2  # source still occupied

    def test_evacuating_last_item_closes_source(self):
        state, a, b, c = self._two_bins()
        state.now = 1.0
        state.migrate(b, state.bins[1])
        state.now = 2.0
        src = state.migrate(a, state.bins[1])
        assert src.is_closed
        assert src.closed_at == 2.0
        assert state.num_open == 1
        assert 0 not in dict.fromkeys(b.index for b in state.open_bins())
        assert state.bins[1].level == pytest.approx(0.9)
        assert state.total_level == pytest.approx(0.9)

    def test_migrate_into_closed_bin_raises(self):
        state, a, b, c = self._two_bins()
        state.now = 1.0
        state.migrate(b, state.bins[1])
        state.now = 2.0
        closed = state.migrate(a, state.bins[1])  # closes bin 0
        with pytest.raises(ValueError, match="closed bin 0"):
            state.migrate(c, closed)

    def test_migrate_into_own_bin_raises(self):
        state, a, b, c = self._two_bins()
        with pytest.raises(ValueError, match="its own bin"):
            state.migrate(a, state.bins[0])

    def test_index_lanes_stay_query_consistent(self, forced_index):
        """After migrations, indexed selection == reference scan, bit for bit."""
        state, a, b, c = self._two_bins(indexed=True)
        assert state._index is not None
        state.now = 1.0
        state.migrate(b, state.bins[1])
        state.migrate(a, state.bins[1])  # closes bin 0
        for size in (0.05, 0.1, 0.4, 0.95):
            via_index = state.first_fit_bin(size)
            scan = next(
                (x for x in state.open_bins()
                 if x.level + size <= state._cap_bound),
                None,
            )
            assert via_index is scan, f"size {size}"

    def test_base_class_and_scalar_override_agree(self):
        """The flattened scalar body mirrors the generic base mutation."""
        import repro.core.state as sm

        scalar, a1, b1, c1 = self._two_bins()
        generic = PackingState()
        generic.now = 0.0
        a2, b2, c2 = _item(1, 0.3), _item(2, 0.2), _item(3, 0.4)
        generic.place(a2, None)
        generic.place(b2, generic.bins[0])
        generic.place(c2, None)
        scalar.now = generic.now = 1.0
        scalar.migrate(b1, scalar.bins[1])
        sm.BasePackingState.migrate(generic, b2, generic.bins[1])
        assert scalar.item_bin == generic.item_bin
        assert [x.level for x in scalar.bins] == [x.level for x in generic.bins]
        assert scalar.total_level == generic.total_level


class TestVectorMigrate:
    def test_moves_item_and_closes_source(self):
        state = VectorPackingState(capacity=(1.0, 1.0), indexed=False)
        state.now = 0.0
        a = _vitem(1, (0.5, 0.2))
        b = _vitem(2, (0.3, 0.3))
        state.place(a, None)
        state.place(b, None)
        state.now = 1.0
        src = state.migrate(a, state.bins[1])
        assert src.is_closed and src.closed_at == 1.0
        assert state.item_bin[1] == 1
        assert state.bins[1].level == pytest.approx((0.8, 0.5))
        assert state.num_open == 1

    def test_migrate_into_own_bin_raises(self):
        state = VectorPackingState(capacity=(1.0, 1.0), indexed=False)
        state.now = 0.0
        a = _vitem(1, (0.5, 0.2))
        state.place(a, None)
        state.place(_vitem(2, (0.2, 0.2)), None)
        with pytest.raises(ValueError, match="its own bin"):
            state.migrate(a, state.bins[0])


class TestCheckMove:
    def _state(self):
        state = PackingState(indexed=False)
        state.now = 0.0
        a, b = _item(1, 0.6), _item(2, 0.7)
        state.place(a, None)
        state.place(b, None)
        return state, a, b

    def test_valid_move_returns_source(self):
        state, a, b = self._state()
        state.depart(b)  # reopen capacity story: bin 1 closes
        state.place(_item(3, 0.1), None)
        src = check_move("x", state, a, state.bins[2])
        assert src is state.bins[0]

    def test_same_bin_rejected(self):
        state, a, b = self._state()
        with pytest.raises(RuntimeError, match="kept item 1 in bin 0"):
            check_move("x", state, a, state.bins[0])

    def test_closed_target_rejected(self):
        state, a, b = self._state()
        state.depart(b)
        with pytest.raises(RuntimeError, match="closed bin 1"):
            check_move("x", state, a, state.bins[1])

    def test_infeasible_target_rejected(self):
        state, a, b = self._state()
        with pytest.raises(RuntimeError, match="chose bin 1 at level"):
            check_move("x", state, a, state.bins[1])  # 0.7 + 0.6 > 1


class TestEvacuationPlanner:
    def test_zero_budget_plans_nothing(self):
        state = PackingState(indexed=False)
        state.now = 0.0
        state.place(_item(1, 0.2), None)
        state.place(_item(2, 0.2), None)
        assert plan_evacuation_moves(state, 0) == []

    def test_single_open_bin_plans_nothing(self):
        state = PackingState(indexed=False)
        state.now = 0.0
        state.place(_item(1, 0.2), None)
        assert plan_evacuation_moves(state, 4) == []

    def test_evacuates_emptiest_bin_entirely(self):
        state = PackingState(indexed=False)
        state.now = 0.0
        state.place(_item(1, 0.6), None)   # bin 0: fuller
        state.place(_item(2, 0.1), None)   # bin 1: emptiest -> victim
        state.place(_item(3, 0.1), state.bins[1])
        moves = plan_evacuation_moves(state, 2)
        assert [(it.item_id, t.index) for it, t in moves] == [(2, 0), (3, 0)]

    def test_all_or_nothing_skips_stuck_victims(self):
        state = PackingState(indexed=False)
        state.now = 0.0
        state.place(_item(1, 0.9), None)   # bin 0: nearly full
        state.place(_item(2, 0.3), None)   # bin 1: emptiest, but 0.3 won't fit in 0
        state.place(_item(3, 0.5), None)   # bin 2
        # bin 1 cannot fully rehome (0.3 fits only bin 2); bin 2's 0.5
        # fits nowhere -> the only complete evacuation is bin 1 -> bin 2
        moves = plan_evacuation_moves(state, 4)
        assert [(it.item_id, t.index) for it, t in moves] == [(2, 2)]

    def test_budget_caps_victim_size(self):
        state = PackingState(indexed=False)
        state.now = 0.0
        state.place(_item(1, 0.1), None)   # bin 0: two small items
        state.place(_item(2, 0.1), state.bins[0])
        state.place(_item(3, 0.85), None)  # bins 1 and 2: stuck singletons
        state.place(_item(4, 0.9), None)   # (fit nowhere else)
        assert plan_evacuation_moves(state, 1) == []  # bin 0 needs 2 moves
        assert len(plan_evacuation_moves(state, 2)) == 2

    def test_planner_is_deterministic(self):
        items = poisson_workload(120, seed=5, mu_target=6.0, arrival_rate=15.0)
        result = run_packing(items, BudgetedRepack(budget=3))
        repeat = run_packing(items, BudgetedRepack(budget=3))
        assert result.item_bin == repeat.item_bin
        assert result.total_usage_time == repeat.total_usage_time


class TestDriverIntegration:
    def test_usage_time_matches_bin_spans(self):
        """The incremental cost of a migrating run == the bin-span recompute."""
        items = poisson_workload(150, seed=9, mu_target=5.0, arrival_rate=12.0)
        result = run_packing(items, BudgetedRepack(budget=4))
        spans = sum(b.closed_at - b.opened_at for b in result.bins)
        assert result.total_usage_time == pytest.approx(spans, abs=1e-9)

    def test_migrations_actually_happen(self):
        """Guard the guard: the workloads above must really trigger moves."""
        items = poisson_workload(150, seed=9, mu_target=5.0, arrival_rate=12.0)
        policy = BudgetedRepack(budget=4)
        run_packing(items, policy)
        assert policy.moves > 0

    def test_migration_reduces_usage_time(self):
        items = poisson_workload(300, seed=3, mu_target=6.0, arrival_rate=15.0)
        plain = run_packing(items, BudgetedRepack(budget=0)).total_usage_time
        repacked = run_packing(items, BudgetedRepack(budget=4)).total_usage_time
        assert repacked < plain
