"""Churn property tests: the FF indexes under migration-shaped traffic.

A migration hits the index with a *paired* remove→reinsert: the source
bin's level drops (or the slot closes outright) and the target's level
rises, in the same event, with no ``append`` in between.  The original
randomized tests exercise each lane independently; these drive the exact
two-sided pattern the migration engine produces — long runs of paired
``set_level`` updates punctuated by evacuation closes — and check every
query against the brute-force oracle throughout, for both the scalar
:class:`FirstFitIndex` and the vector :class:`VectorFirstFitIndex`.
"""

from __future__ import annotations

import random

from repro.core.ffindex import FirstFitIndex, VectorFirstFitIndex

from .test_ffindex import BOUND, Oracle, check_all_queries

BOUND2 = (1.0 + 1e-9, 1.0 + 1e-9)


def _migrate_pair(rng, levels):
    """Pick (src, dst, moved fraction) the way an evacuation does."""
    src = min(levels, key=lambda i: (levels[i], i))  # emptiest-first victim
    dst = rng.choice([i for i in levels if i != src])
    return src, dst


def test_scalar_index_survives_heavy_migration_churn():
    rng = random.Random(1234)
    index = FirstFitIndex()
    oracle = Oracle()
    next_idx = 0
    for _ in range(40):  # population for the churn to act on
        lvl = rng.uniform(0.05, 0.6)
        index.append(next_idx, lvl)
        oracle.levels[next_idx] = lvl
        next_idx += 1
    for step in range(4000):
        op = rng.random()
        if op < 0.70 and len(oracle.levels) >= 2:
            # a migration: source sheds a chunk, target absorbs it,
            # both updates land before any query runs
            src, dst = _migrate_pair(rng, oracle.levels)
            moved = oracle.levels[src] * rng.uniform(0.3, 1.0)
            src_after = oracle.levels[src] - moved
            if src_after < 1e-12 and rng.random() < 0.5:
                index.close(src)
                del oracle.levels[src]
            else:
                index.set_level(src, src_after)
                oracle.levels[src] = src_after
            dst_after = min(oracle.levels[dst] + moved, 1.0 - 1e-12)
            index.set_level(dst, dst_after)
            oracle.levels[dst] = dst_after
        elif op < 0.85 or len(oracle.levels) < 2:
            lvl = rng.uniform(0.0, 0.9)
            index.append(next_idx, lvl)
            oracle.levels[next_idx] = lvl
            next_idx += 1
        else:
            victim = rng.choice(list(oracle.levels))
            index.close(victim)
            del oracle.levels[victim]
        if step % 61 == 0:
            check_all_queries(
                index, oracle, [0.0, 1e-12, rng.uniform(0, 1), 0.5, 1.0]
            )
        assert len(index) == len(oracle.levels)
    check_all_queries(index, oracle, [0.1 * k for k in range(12)])


def test_scalar_reinsert_after_full_drain():
    """Empty the index via evacuation closes, then rebuild it — twice."""
    index = FirstFitIndex()
    oracle = Oracle()
    rng = random.Random(7)
    next_idx = 0
    for _ in range(2):
        for _ in range(50):
            lvl = rng.uniform(0, 0.8)
            index.append(next_idx, lvl)
            oracle.levels[next_idx] = lvl
            next_idx += 1
        check_all_queries(index, oracle, [0.1, 0.5, 0.9])
        for idx in list(oracle.levels):
            index.close(idx)
            del oracle.levels[idx]
        assert index.first_fit(0.0, BOUND) is None
        assert len(index) == 0
    check_all_queries(index, oracle, [0.1])


class _VectorOracle:
    def __init__(self):
        self.levels: dict[int, tuple[float, float]] = {}

    def first_fit(self, sizes, bounds):
        for idx, lvls in self.levels.items():
            if all(l + s <= c for l, s, c in zip(lvls, sizes, bounds)):
                return idx
        return None


def test_vector_index_survives_heavy_migration_churn():
    rng = random.Random(99)
    index = VectorFirstFitIndex(2)
    oracle = _VectorOracle()
    next_idx = 0
    for _ in range(30):
        lvls = (rng.uniform(0.05, 0.5), rng.uniform(0.05, 0.5))
        index.append(next_idx, lvls)
        oracle.levels[next_idx] = lvls
        next_idx += 1
    for step in range(3000):
        op = rng.random()
        if op < 0.70 and len(oracle.levels) >= 2:
            src = min(oracle.levels, key=lambda i: (max(oracle.levels[i]), i))
            dst = rng.choice([i for i in oracle.levels if i != src])
            frac = rng.uniform(0.3, 1.0)
            moved = tuple(l * frac for l in oracle.levels[src])
            src_after = tuple(
                l - m for l, m in zip(oracle.levels[src], moved)
            )
            if max(src_after) < 1e-12 and rng.random() < 0.5:
                index.close(src)
                del oracle.levels[src]
            else:
                index.set_level(src, src_after)
                oracle.levels[src] = src_after
            dst_after = tuple(
                min(l + m, 1.0 - 1e-12)
                for l, m in zip(oracle.levels[dst], moved)
            )
            index.set_level(dst, dst_after)
            oracle.levels[dst] = dst_after
        elif op < 0.85 or len(oracle.levels) < 2:
            lvls = (rng.uniform(0, 0.8), rng.uniform(0, 0.8))
            index.append(next_idx, lvls)
            oracle.levels[next_idx] = lvls
            next_idx += 1
        else:
            victim = rng.choice(list(oracle.levels))
            index.close(victim)
            del oracle.levels[victim]
        if step % 53 == 0:
            probes = [
                (0.0, 0.0),
                (rng.uniform(0, 1), rng.uniform(0, 1)),
                (0.5, 0.5),
                (1.0, 1.0),
            ]
            for sizes in probes:
                assert index.first_fit(sizes, BOUND2) == oracle.first_fit(
                    sizes, BOUND2
                )
        assert len(index) == len(oracle.levels)
