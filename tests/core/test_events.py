"""Tests for repro.core.events: deterministic event ordering."""

from hypothesis import given

from repro.core.events import Event, EventKind, EventQueue, event_sequence
from repro.core.items import Item, ItemList

from ..conftest import item_lists


class TestEventOrdering:
    def test_time_ordering(self):
        items = ItemList([Item(0, 0.5, 1.0, 3.0), Item(1, 0.5, 0.0, 2.0)])
        events = event_sequence(items)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_departure_before_arrival_at_same_time(self):
        # item 0 departs at t=1 exactly when item 1 arrives: the departure
        # must be processed first (half-open intervals free the space)
        items = ItemList([Item(0, 1.0, 0.0, 1.0), Item(1, 1.0, 1.0, 2.0)])
        events = event_sequence(items)
        at_one = [e for e in events if e.time == 1.0]
        assert [e.kind for e in at_one] == [EventKind.DEPART, EventKind.ARRIVE]

    def test_simultaneous_arrivals_follow_instance_order(self):
        items = ItemList(
            [Item(5, 0.1, 0.0, 1.0), Item(3, 0.1, 0.0, 1.0), Item(9, 0.1, 0.0, 1.0)]
        )
        arrivals = [e for e in event_sequence(items) if e.kind is EventKind.ARRIVE]
        assert [e.item.item_id for e in arrivals] == [5, 3, 9]

    def test_two_events_per_item(self):
        items = ItemList([Item(i, 0.2, i * 0.5, i * 0.5 + 1) for i in range(7)])
        assert len(event_sequence(items)) == 14

    @given(item_lists(max_items=25))
    def test_event_sequence_is_sorted_and_complete(self, items):
        events = event_sequence(items)
        assert len(events) == 2 * len(items)
        for a, b in zip(events, events[1:]):
            assert (a.time, a.kind) <= (b.time, b.kind)
        arrivals = sum(1 for e in events if e.kind is EventKind.ARRIVE)
        assert arrivals == len(items)

    @given(item_lists(max_items=25))
    def test_departure_never_precedes_arrival_of_same_item(self, items):
        seen_arrival = set()
        for e in event_sequence(items):
            if e.kind is EventKind.ARRIVE:
                seen_arrival.add(e.item.item_id)
            else:
                assert e.item.item_id in seen_arrival


class TestEventQueue:
    def make_events(self):
        it = Item(0, 0.5, 0.0, 1.0)
        return [
            Event(3.0, EventKind.ARRIVE, 0, it),
            Event(1.0, EventKind.DEPART, 1, it),
            Event(1.0, EventKind.ARRIVE, 2, it),
        ]

    def test_pop_order(self):
        q = EventQueue(self.make_events())
        popped = [q.pop() for _ in range(3)]
        assert [e.time for e in popped] == [1.0, 1.0, 3.0]
        assert popped[0].kind is EventKind.DEPART

    def test_dynamic_push(self):
        q = EventQueue()
        it = Item(0, 0.5, 0.0, 1.0)
        q.push(Event(5.0, EventKind.ARRIVE, 0, it))
        q.push(Event(2.0, EventKind.ARRIVE, 1, it))
        assert q.peek().time == 2.0
        assert len(q) == 2

    def test_drain(self):
        q = EventQueue(self.make_events())
        drained = list(q.drain())
        assert len(drained) == 3
        assert not q

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(Event(0.0, EventKind.ARRIVE, 0, Item(0, 0.5, 0.0, 1.0)))
        assert q
