"""Tests for repro.core.items: the Item and ItemList model."""

import pytest
from hypothesis import given

from repro.core.intervals import Interval
from repro.core.items import Item, ItemList, validate_items

from ..conftest import item_lists


class TestItem:
    def test_basic_properties(self):
        it = Item(1, size=0.5, arrival=1.0, departure=4.0)
        assert it.duration == 3.0
        assert it.interval == Interval(1.0, 4.0)
        assert it.time_space_demand == pytest.approx(1.5)

    def test_active_at_half_open(self):
        it = Item(1, 0.5, 1.0, 4.0)
        assert it.active_at(1.0)
        assert it.active_at(3.999)
        assert not it.active_at(4.0)
        assert not it.active_at(0.999)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Item(1, 0.0, 0.0, 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Item(1, -0.1, 0.0, 1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            Item(1, 0.5, 2.0, 2.0)

    def test_departure_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            Item(1, 0.5, 2.0, 1.0)


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ItemList([Item(1, 0.5, 0, 1), Item(1, 0.5, 0, 1)])

    def test_oversized_item_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ItemList([Item(1, 1.5, 0, 1)])

    def test_size_equal_to_capacity_allowed(self):
        items = ItemList([Item(1, 1.0, 0, 1)])
        assert items.total_size == 1.0

    def test_custom_capacity(self):
        items = ItemList([Item(1, 1.5, 0, 1)], capacity=2.0)
        assert items.capacity == 2.0
        validate_items(items.items, 2.0)


class TestItemListStats:
    def make(self):
        return ItemList(
            [
                Item(0, 0.5, 0.0, 2.0),   # duration 2
                Item(1, 0.3, 1.0, 2.0),   # duration 1
                Item(2, 0.2, 5.0, 9.0),   # duration 4
            ]
        )

    def test_mu(self):
        assert self.make().mu == 4.0

    def test_min_max_duration(self):
        items = self.make()
        assert items.min_duration == 1.0
        assert items.max_duration == 4.0

    def test_span_with_gap(self):
        assert self.make().span == 6.0  # [0,2) ∪ [5,9)

    def test_total_size(self):
        assert self.make().total_size == pytest.approx(1.0)

    def test_time_space_demand(self):
        assert self.make().time_space_demand == pytest.approx(
            0.5 * 2 + 0.3 * 1 + 0.2 * 4
        )

    def test_packing_period(self):
        assert self.make().packing_period == Interval(0.0, 9.0)

    def test_active_at(self):
        items = self.make()
        assert {it.item_id for it in items.active_at(1.5)} == {0, 1}
        assert items.active_at(3.0) == []
        assert {it.item_id for it in items.active_at(5.0)} == {2}

    def test_event_times_sorted_distinct(self):
        times = self.make().event_times()
        assert times == sorted(set(times))
        assert times == [0.0, 1.0, 2.0, 5.0, 9.0]

    def test_empty_list_stats_raise(self):
        empty = ItemList([])
        with pytest.raises(ValueError):
            _ = empty.mu
        assert empty.span == 0.0
        assert len(empty) == 0

    def test_container_protocol(self):
        items = self.make()
        assert len(items) == 3
        assert items[1].item_id == 1
        assert [it.item_id for it in items] == [0, 1, 2]


class TestNormalization:
    def test_normalized_min_duration_is_one(self):
        items = ItemList([Item(0, 0.5, 3.0, 7.0), Item(1, 0.5, 5.0, 13.0)])
        norm = items.normalized()
        assert norm.min_duration == pytest.approx(1.0)
        assert norm.mu == pytest.approx(items.mu)

    def test_normalized_starts_at_zero(self):
        items = ItemList([Item(0, 0.5, 3.0, 7.0)])
        norm = items.normalized()
        assert norm.packing_period.left == pytest.approx(0.0)

    @given(item_lists(max_items=15))
    def test_normalization_preserves_mu_and_sizes(self, items):
        norm = items.normalized()
        assert norm.mu == pytest.approx(items.mu, rel=1e-6)
        assert [it.size for it in norm] == [it.size for it in items]

    @given(item_lists(max_items=15))
    def test_normalization_scales_span(self, items):
        norm = items.normalized()
        scale = 1.0 / items.min_duration
        assert norm.span == pytest.approx(items.span * scale, rel=1e-6)
