"""Differential tests: indexed fast path ≡ reference scans, bit for bit.

The contract behind the whole perf tentpole is that the segment-tree
index is a pure accelerator: for **every** registered algorithm, on any
instance, ``run_packing(..., indexed=True)`` and ``indexed=False`` must
produce the *same packing* — identical ``item_bin`` maps and identical
(float-exact, not approximate) total usage time.  These tests pin that
on the frozen adversarial corpus, on random workloads in both the
low-load regime (tree never activates) and the high-load regime (tree
active), and — by forcing the activation thresholds to zero — with the
tree answering every single query from the first bin on.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings

import repro.core.state as state_mod
from repro.algorithms import ALGORITHM_REGISTRY, make_algorithm
from repro.core.packing import run_packing
from repro.workloads.random_workloads import poisson_workload
from repro.workloads.traces import load_trace

from ..conftest import item_lists

DATA = Path(__file__).parent.parent / "data"
CORPUS = sorted(p for p in DATA.glob("*.json") if p.name != "expected_costs.json")
ALL_ALGORITHMS = sorted(ALGORITHM_REGISTRY)


def assert_identical_packing(items, algo_name):
    fast = run_packing(items, make_algorithm(algo_name), indexed=True)
    ref = run_packing(items, make_algorithm(algo_name), indexed=False)
    assert fast.item_bin == ref.item_bin, f"{algo_name}: placements diverged"
    # identical placements make identical bins, so the cost matches to
    # the last bit — no approx
    assert fast.total_usage_time == ref.total_usage_time
    assert fast.num_bins == ref.num_bins


@pytest.fixture
def forced_tree(monkeypatch):
    """Make the indexed path build and query the tree from bin one."""
    monkeypatch.setattr(state_mod, "INDEX_THRESHOLD", 1)
    monkeypatch.setattr(state_mod, "_BEST_FIT_TREE_MIN", 1)


@pytest.mark.parametrize("algo_name", ALL_ALGORITHMS)
@pytest.mark.parametrize("trace", CORPUS, ids=lambda p: p.stem)
class TestCorpusDifferential:
    def test_adversarial_corpus(self, trace, algo_name):
        assert_identical_packing(load_trace(trace), algo_name)

    def test_adversarial_corpus_forced_tree(self, trace, algo_name, forced_tree):
        assert_identical_packing(load_trace(trace), algo_name)


@pytest.mark.parametrize("algo_name", ALL_ALGORITHMS)
def test_low_load_random(algo_name):
    # a handful of open bins: the adaptive index stays on the scans
    items = poisson_workload(400, seed=7, mu_target=8.0, arrival_rate=2.0)
    assert_identical_packing(items, algo_name)


@pytest.mark.parametrize("algo_name", ALL_ALGORITHMS)
def test_high_load_random_activates_tree(algo_name):
    # ~160 concurrently open bins: crosses INDEX_THRESHOLD so the tree
    # serves the selection queries mid-run
    items = poisson_workload(800, seed=11, mu_target=8.0, arrival_rate=200.0)
    assert_identical_packing(items, algo_name)


@pytest.mark.parametrize("algo_name", ALL_ALGORITHMS)
def test_random_forced_tree(algo_name, forced_tree):
    items = poisson_workload(300, seed=23, mu_target=12.0, arrival_rate=5.0)
    assert_identical_packing(items, algo_name)


def test_tree_actually_activates_in_high_load_run():
    """Guard the guard: the high-load test must really exercise the tree."""
    from repro.algorithms.first_fit import FirstFit
    from repro.core.events import event_tuples
    from repro.core.items import ItemList
    from repro.core.state import PackingState

    items = poisson_workload(800, seed=11, mu_target=8.0, arrival_rate=200.0)
    state = PackingState(indexed=True)
    algo = FirstFit()
    algo.reset()
    for time, kind, seq, item in event_tuples(ItemList(items)):
        state.now = time
        if kind:
            state.place(item, algo.choose_bin(state, item.size))
        else:
            state.depart(item)
    assert state._index is not None, "tree never activated at high load"


@settings(max_examples=60, deadline=None)
@given(items=item_lists(max_items=40))
def test_property_differential_forced_tree(items):
    """Hypothesis-random instances, tree forced on, core Any-Fit family."""
    # parametrize-by-hand: hypothesis and pytest.mark.parametrize don't mix
    orig_threshold = state_mod.INDEX_THRESHOLD
    orig_bf = state_mod._BEST_FIT_TREE_MIN
    state_mod.INDEX_THRESHOLD = 1
    state_mod._BEST_FIT_TREE_MIN = 1
    try:
        for algo_name in ("first-fit", "best-fit", "worst-fit", "last-fit"):
            assert_identical_packing(items, algo_name)
    finally:
        state_mod.INDEX_THRESHOLD = orig_threshold
        state_mod._BEST_FIT_TREE_MIN = orig_bf


@settings(max_examples=40, deadline=None)
@given(items=item_lists(max_items=30))
def test_property_differential_adaptive(items):
    """Same, with the production (adaptive) thresholds in force."""
    for algo_name in ("first-fit", "next-fit", "hybrid-first-fit"):
        assert_identical_packing(items, algo_name)
