"""Tests for repro.core.metrics: timelines and averages."""

import pytest
from hypothesis import given, settings

from repro.algorithms import FirstFit
from repro.core.items import Item, ItemList
from repro.core.metrics import (
    aggregate_level_timeline,
    open_bins_timeline,
    time_weighted_average,
    utilization_timeline,
)
from repro.core.packing import run_packing

from ..conftest import item_lists


def pack(items):
    return run_packing(ItemList(items), FirstFit())


class TestOpenBinsTimeline:
    def test_single_bin(self):
        tl = open_bins_timeline(pack([Item(0, 0.5, 1.0, 3.0)]))
        assert tl == [(1.0, 1), (3.0, 0)]

    def test_ends_at_zero(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        tl = open_bins_timeline(result)
        assert tl[-1][1] == 0

    def test_max_matches_result(self):
        result = pack(
            [Item(0, 0.9, 0.0, 4.0), Item(1, 0.9, 1.0, 5.0), Item(2, 0.9, 2.0, 3.0)]
        )
        tl = open_bins_timeline(result)
        assert max(c for _, c in tl) == result.max_concurrent_bins


class TestAggregateLevel:
    def test_levels(self):
        result = pack([Item(0, 0.5, 0.0, 2.0), Item(1, 0.3, 1.0, 3.0)])
        tl = aggregate_level_timeline(result)
        assert tl == [
            (0.0, pytest.approx(0.5)),
            (1.0, pytest.approx(0.8)),
            (2.0, pytest.approx(0.3)),
            (3.0, 0.0),
        ]

    def test_final_level_snaps_to_zero(self):
        result = pack([Item(i, 0.1, 0.0, 1.0) for i in range(7)])
        tl = aggregate_level_timeline(result)
        assert tl[-1][1] == 0.0


class TestUtilization:
    def test_full_utilization(self):
        result = pack([Item(0, 1.0, 0.0, 2.0)])
        tl = utilization_timeline(result)
        assert tl[0] == (0.0, pytest.approx(1.0))

    def test_zero_when_idle(self, disjoint_items):
        result = run_packing(disjoint_items, FirstFit())
        tl = utilization_timeline(result)
        # find a timestamp inside the gap (items end at 1.0, next at 2.0)
        vals = {t: u for t, u in tl}
        assert vals[1.0] == 0.0

    @given(item_lists(max_items=20))
    @settings(max_examples=30, deadline=None)
    def test_utilization_bounded_by_one(self, items):
        result = run_packing(items, FirstFit())
        for _, u in utilization_timeline(result):
            assert -1e-9 <= u <= 1.0 + 1e-9


class TestTimeWeightedAverage:
    def test_constant(self):
        assert time_weighted_average([(0.0, 2.0), (5.0, 0.0)]) == pytest.approx(2.0)

    def test_step(self):
        # 1.0 for one unit, 3.0 for one unit → mean 2.0
        assert time_weighted_average(
            [(0.0, 1.0), (1.0, 3.0), (2.0, 0.0)]
        ) == pytest.approx(2.0)

    def test_degenerate(self):
        assert time_weighted_average([]) == 0.0
        assert time_weighted_average([(1.0, 5.0)]) == 0.0

    def test_matches_average_utilization(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        # time-weighted mean of (total level / open bins) weighted by open
        # bins equals total time-space over total usage time; check the
        # simpler identity: integral of aggregate level == time-space demand
        tl = aggregate_level_timeline(result)
        integral = sum(
            (t1 - t0) * v0 for (t0, v0), (t1, _) in zip(tl, tl[1:])
        )
        assert integral == pytest.approx(simple_items.time_space_demand)
