"""Tests for repro.core.packing: the online driver."""

import pytest
from hypothesis import given, settings

from repro.algorithms import ALGORITHM_REGISTRY, FirstFit, make_algorithm
from repro.algorithms.base import PackingAlgorithm
from repro.core.events import EventKind
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing

from ..conftest import item_lists


class TestDriverBasics:
    def test_simple_first_fit(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        assert result.num_bins == 2
        assert result.total_usage_time == pytest.approx(4.0)

    def test_accepts_plain_iterable(self):
        result = run_packing(
            [Item(0, 0.5, 0.0, 1.0), Item(1, 0.5, 0.0, 1.0)], FirstFit()
        )
        assert result.num_bins == 1

    def test_capacity_mismatch_rejected(self):
        items = ItemList([Item(0, 0.5, 0, 1)], capacity=2.0)
        with pytest.raises(ValueError, match="capacity mismatch"):
            run_packing(items, FirstFit(), capacity=1.0)

    def test_empty_instance(self):
        result = run_packing(ItemList([]), FirstFit())
        assert result.num_bins == 0
        assert result.total_usage_time == 0.0

    def test_single_item(self):
        result = run_packing([Item(0, 1.0, 2.0, 5.0)], FirstFit())
        assert result.num_bins == 1
        assert result.total_usage_time == 3.0

    def test_observer_sees_every_event(self, simple_items):
        seen = []
        run_packing(simple_items, FirstFit(), observers=[lambda e, s: seen.append(e)])
        assert len(seen) == 2 * len(simple_items)
        arrivals = [e for e in seen if e.kind is EventKind.ARRIVE]
        assert len(arrivals) == len(simple_items)

    def test_item_bin_mapping_complete(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        assert set(result.item_bin) == {it.item_id for it in simple_items}


class _CheatingAlgorithm(PackingAlgorithm):
    """Deliberately returns an infeasible bin to test driver validation."""

    name = "cheater"

    def choose_bin(self, state, size):
        bins = state.open_bins()
        return bins[0] if bins else None


class TestDriverValidation:
    def test_driver_rejects_infeasible_choice(self):
        items = [Item(0, 0.8, 0.0, 2.0), Item(1, 0.8, 0.5, 2.0)]
        with pytest.raises(RuntimeError, match="cheater"):
            run_packing(items, _CheatingAlgorithm())

    def test_exact_fill_at_departure_boundary(self):
        # item 1 arrives exactly when item 0 departs: space must be free
        items = [Item(0, 1.0, 0.0, 1.0), Item(1, 1.0, 1.0, 2.0)]
        result = run_packing(items, FirstFit())
        # item 0's bin closed at t=1, so a NEW bin opens (bins never reopen)
        assert result.num_bins == 2
        assert result.total_usage_time == pytest.approx(2.0)


class TestDriverInvariantsAllAlgorithms:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_all_items_placed_and_bins_closed(self, name):
        items = ItemList(
            [Item(i, 0.3 + 0.05 * (i % 5), i * 0.3, i * 0.3 + 1 + (i % 3)) for i in range(25)]
        )
        result = run_packing(items, make_algorithm(name))
        assert set(result.item_bin) == {it.item_id for it in items}
        for b in result.bins:
            assert b.is_closed
            assert not b.active_items

    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_usage_time_at_least_span(self, name):
        items = ItemList([Item(i, 0.4, i * 0.5, i * 0.5 + 2.0) for i in range(15)])
        result = run_packing(items, make_algorithm(name))
        assert result.total_usage_time >= items.span - 1e-9

    @pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
    def test_determinism(self, name):
        items = ItemList(
            [Item(i, 0.2 + 0.13 * (i % 4), (i * 7) % 11, (i * 7) % 11 + 1 + i % 5) for i in range(30)]
        )
        r1 = run_packing(items, make_algorithm(name))
        r2 = run_packing(items, make_algorithm(name))
        assert r1.item_bin == r2.item_bin
        assert r1.total_usage_time == r2.total_usage_time


@given(item_lists(max_items=30))
@settings(max_examples=60, deadline=None)
def test_capacity_never_violated_property(items):
    """At every event, every bin's level stays within capacity."""
    violations = []

    def check(event, state):
        for b in state.open_bins():
            if b.level > state.capacity + 1e-9:
                violations.append((event.time, b.index, b.level))

    run_packing(items, FirstFit(), observers=[check])
    assert violations == []


@given(item_lists(max_items=30))
@settings(max_examples=60, deadline=None)
def test_usage_time_bracket_property(items):
    """span ≤ FF_total ≤ Σ durations (each item alone in a bin)."""
    result = run_packing(items, FirstFit())
    total_durations = sum(it.duration for it in items)
    assert items.span - 1e-7 <= result.total_usage_time <= total_durations + 1e-7
