"""Tests for repro.core.result: PackingResult metrics."""

import pytest

from repro.algorithms import FirstFit
from repro.core.items import Item, ItemList
from repro.core.packing import run_packing


def pack(items):
    return run_packing(ItemList(items), FirstFit())


class TestPackingResult:
    def test_total_usage_time_sums_bins(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        assert result.total_usage_time == pytest.approx(
            sum(b.usage_time for b in result.bins)
        )

    def test_usage_periods_match_bins(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        assert len(result.usage_periods) == result.num_bins

    def test_max_concurrent_bins_overlapping(self):
        result = pack(
            [
                Item(0, 0.9, 0.0, 4.0),
                Item(1, 0.9, 1.0, 5.0),
                Item(2, 0.9, 2.0, 6.0),
            ]
        )
        assert result.max_concurrent_bins == 3

    def test_max_concurrent_bins_sequential(self, disjoint_items):
        result = run_packing(disjoint_items, FirstFit())
        assert result.num_bins == 3
        assert result.max_concurrent_bins == 1

    def test_max_concurrent_touching_periods_dont_stack(self):
        # bin 0 closes at t=1 exactly as bin 1 opens: max concurrent is 1
        result = pack([Item(0, 1.0, 0.0, 1.0), Item(1, 1.0, 1.0, 2.0)])
        assert result.max_concurrent_bins == 1

    def test_average_utilization_full_bin(self):
        result = pack([Item(0, 1.0, 0.0, 2.0)])
        assert result.average_utilization == pytest.approx(1.0)

    def test_average_utilization_half_bin(self):
        result = pack([Item(0, 0.5, 0.0, 2.0)])
        assert result.average_utilization == pytest.approx(0.5)

    def test_bin_of(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        for it in simple_items:
            assert it.item_id in [x.item_id for x in result.bin_of(it.item_id).all_items]

    def test_summary_mentions_algorithm(self, simple_items):
        result = run_packing(simple_items, FirstFit())
        assert "first-fit" in result.summary()
