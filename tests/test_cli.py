"""Tests for the command-line interface (direct main() invocation)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pack", "x.json", "--algorithm", "nope"])


class TestIntOptionValidation:
    """Integer options fail fast with a clear argparse error (exit 2)."""

    def test_workers_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["run", "X1", "--workers", "0"])
        assert e.value.code == 2
        assert "one worker per CPU" in capsys.readouterr().err

    def test_workers_below_minus_one_rejected(self):
        with pytest.raises(SystemExit) as e:
            main(["run", "X1", "--workers", "-3"])
        assert e.value.code == 2

    def test_workers_minus_one_parses(self):
        args = build_parser().parse_args(["run", "X1", "--workers", "-1"])
        assert args.workers == -1

    def test_workers_positive_parses(self):
        args = build_parser().parse_args(["run", "X1", "--workers", "4"])
        assert args.workers == 4

    def test_generate_n_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["generate", "poisson", "--n", "0", "--out", "x.json"])
        assert e.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_bench_repeats_zero_rejected(self):
        with pytest.raises(SystemExit) as e:
            main(["bench", "--repeats", "0"])
        assert e.value.code == 2


class TestGeneratePackRoundTrip:
    """`repro generate` → `repro pack` through a tmp dir, with fidelity."""

    def test_saved_trace_is_faithful_to_the_generator(self, tmp_path):
        from repro.workloads import load_trace, poisson_workload

        out = str(tmp_path / "trace.json")
        assert main(["generate", "poisson", "--n", "40", "--seed", "9",
                     "--mu", "6", "--rate", "3", "--out", out]) == 0
        direct = poisson_workload(40, seed=9, mu_target=6.0, arrival_rate=3.0)
        loaded = load_trace(out)
        assert len(loaded) == len(direct)
        assert loaded.capacity == direct.capacity
        for a, b in zip(loaded, direct):
            assert (a.item_id, a.size, a.arrival, a.departure) == (
                b.item_id, b.size, b.arrival, b.departure
            )

    def test_pack_reports_generator_cost(self, tmp_path, capsys):
        from repro.algorithms import make_algorithm
        from repro.core.packing import run_packing
        from repro.workloads import poisson_workload

        out = str(tmp_path / "trace.json")
        main(["generate", "poisson", "--n", "40", "--seed", "9",
              "--mu", "6", "--rate", "3", "--out", out])
        capsys.readouterr()
        assert main(["pack", out, "--algorithm", "best-fit"]) == 0
        printed = capsys.readouterr().out
        direct = run_packing(
            poisson_workload(40, seed=9, mu_target=6.0, arrival_rate=3.0),
            make_algorithm("best-fit"),
        )
        assert f"{direct.total_usage_time:.4f}" in printed
        assert "best-fit" in printed

    def test_csv_roundtrip_and_render_smoke(self, tmp_path, capsys):
        out = str(tmp_path / "trace.csv")
        assert main(["generate", "gaming", "--n", "12", "--seed", "2",
                     "--out", out]) == 0
        assert main(["pack", out, "--render"]) == 0
        assert "bin " in capsys.readouterr().out

    def test_pack_missing_trace_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["pack", str(tmp_path / "nope.json")])


class TestCommands:
    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "first-fit" in out
        assert "clairvoyant" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F1" in out and "X4" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--mu", "4"]) == 0
        out = capsys.readouterr().out
        assert "8.00" in out  # µ+4 at µ=4

    def test_run_figure(self, capsys):
        assert main(["run", "F1"]) == 0
        assert "span" in capsys.readouterr().out

    def test_run_table_experiment(self, capsys):
        assert main(["run", "F5-F6"]) == 0
        assert "Lemma 2" in capsys.readouterr().out

    def test_generate_pack_verify_roundtrip(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        assert main(["generate", "poisson", "--n", "30", "--seed", "5",
                     "--out", trace]) == 0
        assert main(["pack", trace, "--algorithm", "first-fit", "--opt"]) == 0
        out = capsys.readouterr().out
        assert "OPT_total" in out and "ratio" in out
        assert main(["verify", trace]) == 0
        assert "all propositions and lemmas hold" in capsys.readouterr().out

    def test_generate_adversarial_kinds(self, tmp_path, capsys):
        for kind in ("nextfit-lb", "universal-lb", "staircase", "gaming"):
            trace = str(tmp_path / f"{kind}.csv")
            assert main(["generate", kind, "--n", "8", "--mu", "4",
                         "--out", trace]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 4

    def test_pack_with_render(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", "poisson", "--n", "10", "--out", trace])
        assert main(["pack", trace, "--render"]) == 0
        assert "bin " in capsys.readouterr().out

    def test_pack_clairvoyant_algorithm(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", "poisson", "--n", "15", "--out", trace])
        assert main(["pack", trace, "--algorithm", "departure-aligned-fit"]) == 0
        assert "departure-aligned-fit" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["--version"])
        assert e.value.code == 0
