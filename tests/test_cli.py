"""Tests for the command-line interface (direct main() invocation)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pack", "x.json", "--algorithm", "nope"])


class TestCommands:
    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "first-fit" in out
        assert "clairvoyant" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F1" in out and "X4" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--mu", "4"]) == 0
        out = capsys.readouterr().out
        assert "8.00" in out  # µ+4 at µ=4

    def test_run_figure(self, capsys):
        assert main(["run", "F1"]) == 0
        assert "span" in capsys.readouterr().out

    def test_run_table_experiment(self, capsys):
        assert main(["run", "F5-F6"]) == 0
        assert "Lemma 2" in capsys.readouterr().out

    def test_generate_pack_verify_roundtrip(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        assert main(["generate", "poisson", "--n", "30", "--seed", "5",
                     "--out", trace]) == 0
        assert main(["pack", trace, "--algorithm", "first-fit", "--opt"]) == 0
        out = capsys.readouterr().out
        assert "OPT_total" in out and "ratio" in out
        assert main(["verify", trace]) == 0
        assert "all propositions and lemmas hold" in capsys.readouterr().out

    def test_generate_adversarial_kinds(self, tmp_path, capsys):
        for kind in ("nextfit-lb", "universal-lb", "staircase", "gaming"):
            trace = str(tmp_path / f"{kind}.csv")
            assert main(["generate", kind, "--n", "8", "--mu", "4",
                         "--out", trace]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 4

    def test_pack_with_render(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", "poisson", "--n", "10", "--out", trace])
        assert main(["pack", trace, "--render"]) == 0
        assert "bin " in capsys.readouterr().out

    def test_pack_clairvoyant_algorithm(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", "poisson", "--n", "15", "--out", trace])
        assert main(["pack", trace, "--algorithm", "departure-aligned-fit"]) == 0
        assert "departure-aligned-fit" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["--version"])
        assert e.value.code == 0
