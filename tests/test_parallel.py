"""Tests for the process-parallel experiment runner."""

from __future__ import annotations

import pytest

from repro.parallel import parallel_map, resolve_workers


def _square(x):
    return x * x


def _flaky_order(x):
    # busy-wait inversely to x so later tasks finish first under real
    # parallelism; the merge must still be in task order
    total = 0
    for _ in range((5 - x) * 2000):
        total += 1
    return (x, total >= 0)


class TestResolveWorkers:
    def test_serial_values(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count(self):
        assert resolve_workers(4) == 4

    def test_negative_means_all_cpus(self):
        assert resolve_workers(-1) >= 1


class TestParallelMap:
    def test_serial_matches_builtin_map(self):
        assert parallel_map(_square, range(10)) == [x * x for x in range(10)]

    def test_empty_tasks(self):
        assert parallel_map(_square, []) == []
        assert parallel_map(_square, [], workers=4) == []

    def test_parallel_matches_serial(self):
        tasks = list(range(12))
        assert parallel_map(_square, tasks, workers=2) == parallel_map(_square, tasks)

    def test_ordered_merge_under_skewed_runtimes(self):
        results = parallel_map(_flaky_order, [0, 1, 2, 3, 4], workers=2)
        assert [r[0] for r in results] == [0, 1, 2, 3, 4]

    def test_worker_error_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_boom, [1, 0], workers=2)


def _boom(x):
    return 1 // x


class TestShardErrorContext:
    """A failing shard must say which task it was working on."""

    @pytest.mark.parametrize("workers", [None, 2])
    def test_exception_carries_shard_index_and_task(self, workers):
        with pytest.raises(ZeroDivisionError) as excinfo:
            parallel_map(_boom, [1, 2, 0, 3], workers=workers)
        notes = "\n".join(getattr(excinfo.value, "__notes__", ()))
        assert "parallel_map: shard 2" in notes
        assert "0" in notes

    @pytest.mark.parametrize("workers", [None, 2])
    def test_original_exception_type_preserved(self, workers):
        with pytest.raises(KeyError):
            parallel_map(_lookup, [{"k": 1}, {}], workers=workers)

    def test_long_task_reprs_are_truncated(self):
        big = list(range(10_000))
        with pytest.raises(ZeroDivisionError) as excinfo:
            parallel_map(_boom_on_list, [big])
        notes = "\n".join(getattr(excinfo.value, "__notes__", ()))
        assert "…" in notes
        assert len(notes) < 400


def _lookup(d):
    return d["k"]


def _boom_on_list(xs):
    return 1 // (len(xs) - len(xs))


class TestExperimentDeterminism:
    """Serial and parallel experiment shards must agree exactly."""

    def test_expected_ratio_worker_count_invariant(self):
        from repro.experiments.montecarlo import run_expected_ratio

        cfg = dict(n=25, replications=3, loads=(2.0,), mus=(8.0,),
                   algorithms=("first-fit", "next-fit"), node_budget=8_000)
        serial = run_expected_ratio(**cfg)
        sharded = run_expected_ratio(**cfg, workers=2)
        assert serial.rows == sharded.rows

    def test_bounds_table_worker_count_invariant(self):
        from repro.experiments.comparison import run_bounds_table

        cfg = dict(mu=4.0, algorithms=("first-fit", "next-fit"), node_budget=8_000)
        serial = run_bounds_table(**cfg)
        sharded = run_bounds_table(**cfg, workers=2)
        assert serial.rows == sharded.rows
