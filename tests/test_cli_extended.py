"""Tests for the extended CLI commands (inspect, report, mmpp)."""

import pytest

from repro.cli import main
from repro.experiments.report import generate_report, run_all_experiments


class TestInspect:
    def test_inspect_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", "poisson", "--n", "25", "--seed", "2", "--out", trace])
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        out = capsys.readouterr().out
        assert "items" in out and "burstiness" in out

    def test_generate_mmpp(self, tmp_path, capsys):
        trace = str(tmp_path / "m.csv")
        assert main(["generate", "mmpp", "--n", "40", "--seed", "1",
                     "--out", trace]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out


class TestReport:
    def test_report_subset(self, tmp_path, capsys):
        out_path = tmp_path / "r.md"
        assert main(["report", "--out", str(out_path), "--only", "F1"]) == 0
        text = out_path.read_text()
        assert "# Reproduction report" in text
        assert "## F1" in text
        assert "span" in text

    def test_run_all_respects_only(self):
        results = run_all_experiments(only=("F1",))
        assert set(results) == {"F1"}

    def test_progress_callback(self, tmp_path):
        seen = []
        generate_report(tmp_path / "r.md", only=("F1", "F2"), progress=seen.append)
        assert seen == ["F1", "F2"]

    def test_table_experiments_rendered(self, tmp_path):
        path = generate_report(tmp_path / "r.md", only=("F5-F6",))
        assert "Lemma 2" in path.read_text()

    def test_report_cache_flags(self, tmp_path, capsys):
        out_path = str(tmp_path / "r.md")
        cache = str(tmp_path / "cache")
        base = ["report", "--out", out_path, "--only", "F1", "T1",
                "--profile", "smoke", "--cache-dir", cache,
                "--stamp", "2026-01-01"]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "cache hits: 0/2" in first
        assert main(base + ["--resume", "--workers", "2"]) == 0
        second = capsys.readouterr().out
        assert "cache hits: 2/2" in second

    def test_report_unknown_only_exits_2(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path / "r.md"),
                     "--only", "NOPE"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err


class TestRunFlags:
    """Uniform spec-derived flags on `repro run`."""

    def test_profile_and_json_artifact(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "f56.json"
        assert main(["run", "F5-F6", "--profile", "smoke",
                     "--json", str(artifact)]) == 0
        assert "Lemma 2" in capsys.readouterr().out
        doc = json.loads(artifact.read_text())
        assert doc["experiment"] == "F5-F6"
        # the smoke profile's seeds override landed in the params
        assert doc["params"]["seeds"] == {"__tuple__": [0, 1]}

    def test_seed_maps_to_declared_seed_param(self, capsys):
        assert main(["run", "F5-F6", "--profile", "smoke",
                     "--seed", "5"]) == 0
        # seeds=(5,): exactly one run checked
        assert "checked 1 randomized" in capsys.readouterr().out

    def test_undeclared_param_exits_2(self, capsys):
        assert main(["run", "F1", "--node-budget", "5"]) == 2
        err = capsys.readouterr().err
        assert "unknown parameter 'node_budget'" in err

    def test_no_seed_param_exits_2(self, capsys):
        assert main(["run", "X10", "--seed", "3"]) == 2
        assert "no seed parameter" in capsys.readouterr().err
