"""Tests for the extended CLI commands (inspect, report, mmpp)."""

import pytest

from repro.cli import main
from repro.experiments.report import generate_report, run_all_experiments


class TestInspect:
    def test_inspect_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", "poisson", "--n", "25", "--seed", "2", "--out", trace])
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        out = capsys.readouterr().out
        assert "items" in out and "burstiness" in out

    def test_generate_mmpp(self, tmp_path, capsys):
        trace = str(tmp_path / "m.csv")
        assert main(["generate", "mmpp", "--n", "40", "--seed", "1",
                     "--out", trace]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out


class TestReport:
    def test_report_subset(self, tmp_path, capsys):
        out_path = tmp_path / "r.md"
        assert main(["report", "--out", str(out_path), "--only", "F1"]) == 0
        text = out_path.read_text()
        assert "# Reproduction report" in text
        assert "## F1" in text
        assert "span" in text

    def test_run_all_respects_only(self):
        results = run_all_experiments(only=("F1",))
        assert set(results) == {"F1"}

    def test_progress_callback(self, tmp_path):
        seen = []
        generate_report(tmp_path / "r.md", only=("F1", "F2"), progress=seen.append)
        assert seen == ["F1", "F2"]

    def test_table_experiments_rendered(self, tmp_path):
        path = generate_report(tmp_path / "r.md", only=("F5-F6",))
        assert "Lemma 2" in path.read_text()
