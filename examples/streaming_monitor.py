#!/usr/bin/env python
"""Streaming simulation: watch a bursty day unfold, event by event.

Uses the generator-based engine (``repro.core.engine``) instead of the
batch driver: a bursty MMPP request stream is dispatched by First Fit
while collectors track the fleet size and utilization live, printing a
console "dashboard" line whenever the open-server count changes.

Run:  python examples/streaming_monitor.py
"""

from repro.algorithms import FirstFit, NextFit
from repro.core.engine import (
    OpenBinsCollector,
    UtilizationCollector,
    simulate,
)
from repro.workloads.mmpp import mmpp_workload, two_phase_bursty
from repro.workloads.profile import profile_instance


def main() -> None:
    stream = mmpp_workload(
        horizon=48.0,
        seed=11,
        phases=two_phase_bursty(base_rate=1.0, burst_rate=14.0,
                                base_dwell=6.0, burst_dwell=1.0),
    )
    print("workload profile:")
    print(profile_instance(stream).render())
    print()

    print("live dispatch (First Fit) — one line per fleet-size change:")
    open_bins = OpenBinsCollector()
    util = UtilizationCollector()
    last_count = -1
    for snap in simulate(stream, FirstFit()):
        open_bins.observe(snap)
        util.observe(snap)
        if snap.num_open_bins != last_count:
            bar = "#" * snap.num_open_bins
            print(f"  t={snap.time:7.2f}h  servers={snap.num_open_bins:>3d} {bar}")
            last_count = snap.num_open_bins
    print()
    print(f"peak fleet: {open_bins.peak} servers; "
          f"time-weighted mean utilization: {util.mean_utilization:.1%}")

    # compare the burst response of First Fit vs Next Fit
    print()
    print("burst response comparison:")
    for algo in (FirstFit(), NextFit()):
        c = OpenBinsCollector()
        c.consume(simulate(stream, algo))
        total_bins = max(b for _, b in c.series) if c.series else 0
        print(f"  {algo.name:12s} peak fleet {c.peak:>3d}")


if __name__ == "__main__":
    main()
