#!/usr/bin/env python
"""Capacity planning: a provider's what-if analysis, end to end.

Combines the cloud-layer features into one decision study for a gaming
provider facing a bursty day:

1. profile the demand (MMPP burst traffic),
2. pick a dispatch policy (First Fit vs Next Fit, T6's lesson),
3. pick a fleet shape (homogeneous vs mixed catalogue, T7's lesson),
4. pick a retention policy under hourly billing (T8's lesson),

and print the combined bill for each configuration.

Run:  python examples/capacity_planning.py
"""

from repro.algorithms import FirstFit, NextFit
from repro.cloud import (
    BilledHourBoundary,
    Dispatcher,
    FleetDispatcher,
    HourlyBilling,
    NoRetention,
    RetentionDispatcher,
    SmallestFitting,
    BestDensity,
)
from repro.workloads.mmpp import mmpp_workload, two_phase_bursty
from repro.workloads.profile import profile_instance


def main() -> None:
    demand = mmpp_workload(
        horizon=72.0,
        seed=23,
        phases=two_phase_bursty(base_rate=2.0, burst_rate=16.0,
                                base_dwell=7.0, burst_dwell=1.5),
        mu_target=10.0,
    )
    print("=== demand profile (3 bursty days) ===")
    print(profile_instance(demand).render())
    billing = HourlyBilling(quantum=1.0)
    print()

    print("=== decision 1: dispatch policy (hourly billing) ===")
    for algo in (FirstFit(), NextFit()):
        rep = Dispatcher(algo, billing=billing).dispatch(demand)
        print(f"  {rep.summary()}")
    print()

    print("=== decision 2: fleet shape (First Fit placement) ===")
    for label, dispatcher in (
        ("mixed fleet, small-first", FleetDispatcher(
            launch_policy=SmallestFitting(), billing=billing)),
        ("mixed fleet, big-first", FleetDispatcher(
            launch_policy=BestDensity(), billing=billing)),
    ):
        rep = dispatcher.dispatch(demand)
        print(f"  {label:28s} servers={rep.num_servers:<4d} "
              f"by type {rep.servers_by_type()}  cost {rep.total_cost:.0f}")
    print()

    print("=== decision 3: retention under hourly billing ===")
    for policy in (NoRetention(), BilledHourBoundary(quantum=1.0)):
        rep = RetentionDispatcher(policy, billing=billing).dispatch(demand)
        print(f"  {policy.name:16s} servers={rep.num_servers:<4d} "
              f"reuses={rep.num_reuses:<4d} cost {rep.total_cost:.0f}")
    print()

    none = RetentionDispatcher(NoRetention(), billing=billing).dispatch(demand)
    held = RetentionDispatcher(
        BilledHourBoundary(quantum=1.0), billing=billing
    ).dispatch(demand)
    delta = none.total_cost - held.total_cost
    if delta >= 0:
        print(f"bottom line: hour-boundary retention saves {delta:.0f} "
              f"billing units ({delta / none.total_cost:.1%}) on this "
              "demand curve — the usual outcome.")
    else:
        print(f"bottom line: on THIS demand curve retention costs "
              f"{-delta:.0f} extra billing units ({-delta / none.total_cost:.1%}): "
              "the hold is free per server, but reuse nudged later "
              "placements into extra billed hours.  Retention is a "
              "measurable policy choice, not a free lunch — which is "
              "exactly why the dispatcher makes it pluggable.")


if __name__ == "__main__":
    main()
