#!/usr/bin/env python
"""Multi-dimensional server allocation — the paper's future-work direction.

Section IX: "extend the MinUsageTime DBP problem to the multi-dimensional
version to model multiple types of resources (e.g., CPU and memory)."
This example allocates jobs with (CPU, memory) demand vectors, compares
the vector policies, and shows how demand correlation changes the game:
perfectly correlated demands behave like the 1-D problem, independent
demands create packing tension.

Run:  python examples/multidim_allocation.py
"""

from repro.multidim import (
    VECTOR_REGISTRY,
    correlated_vector_workload,
    run_vector_packing,
    vector_workload,
)


def main() -> None:
    print("dimension sweep (independent uniform demands, n=150):")
    print(f"{'algorithm':20s} " + "".join(f"  D={d:<6d}" for d in (1, 2, 3)))
    for name, factory in VECTOR_REGISTRY.items():
        ratios = []
        for dims in (1, 2, 3):
            inst = vector_workload(150, seed=11, dimensions=dims)
            res = run_vector_packing(inst, factory())
            ratios.append(res.ratio_vs_lower_bound())
        print(f"{name:20s} " + "".join(f"  {r:<7.3f}" for r in ratios))
    print("(ratio = usage time / max(span, binding-resource time-space))")
    print()

    print("correlation sweep (2-D CPU/memory, n=150):")
    print(f"{'algorithm':20s} " + "".join(f"  ρ={c:<6g}" for c in (0.0, 0.5, 1.0)))
    for name, factory in VECTOR_REGISTRY.items():
        ratios = []
        for corr in (0.0, 0.5, 1.0):
            inst = correlated_vector_workload(150, seed=11, correlation=corr)
            res = run_vector_packing(inst, factory())
            ratios.append(res.ratio_vs_lower_bound())
        print(f"{name:20s} " + "".join(f"  {r:<7.3f}" for r in ratios))
    print()
    print("Correlated demands (ρ→1) reduce to the 1-D problem the paper "
          "analyses; independent demands are strictly harder — the open "
          "question Section IX leaves behind.")


if __name__ == "__main__":
    main()
