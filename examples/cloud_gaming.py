#!/usr/bin/env python
"""Cloud gaming provider simulation — the paper's motivating application.

A provider rents GPU servers pay-as-you-go and dispatches play requests
online; game instances never migrate.  This example:

1. synthesises a day of play sessions from the game catalogue,
2. dispatches them under every candidate policy,
3. bills the rented servers under continuous, hourly and per-second
   billing, and
4. prints the cost comparison (experiment T6's single-scenario view).

Run:  python examples/cloud_gaming.py
"""

from repro.cloud import (
    ContinuousBilling,
    Dispatcher,
    GamingScenario,
    HourlyBilling,
    InstanceType,
    PerSecondBilling,
    run_gaming_comparison,
)
from repro.algorithms import FirstFit
from repro.workloads import DEFAULT_CATALOGUE, gaming_workload


def main() -> None:
    print("Game catalogue:")
    for g in DEFAULT_CATALOGUE:
        print(f"  {g.name:12s} GPU share {g.gpu_share:.2f}  "
              f"mean session {g.session_dist.mean:.2f} h  popularity {g.popularity}")
    print()

    # --- one day of requests, one policy, three billing models -----------
    sessions = gaming_workload(500, seed=2026, request_rate=8.0)
    print(f"workload: {len(sessions)} sessions over "
          f"{sessions.packing_period.length:.1f} h, µ = {sessions.mu:.1f}")
    gpu_server = InstanceType("gpu.large", capacity=1.0, hourly_price=2.4)
    for billing in (ContinuousBilling(), HourlyBilling(), PerSecondBilling()):
        report = Dispatcher(FirstFit(), billing=billing,
                            instance_type=gpu_server).dispatch(sessions)
        print(f"  {report.summary()}  (overhead {report.billing_overhead:.3f}x)")
    print()

    # --- policy comparison under hourly billing --------------------------
    scenario = GamingScenario(
        name="evening-peak",
        num_sessions=500,
        request_rate=8.0,
        seed=2026,
        billing=HourlyBilling(),
        instance_type=gpu_server,
    )
    comparison = run_gaming_comparison(scenario)
    print(comparison.cost_table())
    print()
    best = comparison.best_algorithm()
    nf = comparison.reports["next-fit"]
    ff = comparison.reports["first-fit"]
    print(f"cheapest policy: {best}")
    print(f"Next Fit costs {nf.total_cost / ff.total_cost:.2f}x First Fit — "
          "the Section VIII separation, in dollars.")


if __name__ == "__main__":
    main()
