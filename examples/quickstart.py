#!/usr/bin/env python
"""Quickstart: pack a stream of jobs online and compare against OPT.

Covers the core public API in ~60 lines:

- build an instance (``Item`` / ``ItemList``),
- run First Fit and friends (``run_packing``),
- bracket the offline optimum (``opt_total``),
- check Theorem 1's µ+4 guarantee on the measured ratio,
- render the timeline (Figure-1-style ASCII).

Run:  python examples/quickstart.py
"""

from repro import (
    ALGORITHM_REGISTRY,
    FirstFit,
    Item,
    ItemList,
    make_algorithm,
    opt_total,
    run_packing,
)
from repro.viz import render_bins, render_items


def main() -> None:
    # A small job stream: sizes are resource shares of a unit server,
    # departure times exist in the instance but are hidden from the
    # algorithms until they happen.
    jobs = ItemList(
        [
            Item(0, size=0.60, arrival=0.0, departure=4.0),
            Item(1, size=0.50, arrival=0.5, departure=2.5),
            Item(2, size=0.40, arrival=1.0, departure=6.0),
            Item(3, size=0.30, arrival=2.0, departure=3.0),
            Item(4, size=0.75, arrival=2.5, departure=5.0),
            Item(5, size=0.20, arrival=5.5, departure=8.0),
        ]
    )
    print(render_items(jobs))
    print()

    # --- run First Fit ---------------------------------------------------
    result = run_packing(jobs, FirstFit())
    print(result.summary())
    print(render_bins(result))
    print()

    # --- compare every registered algorithm ------------------------------
    opt = opt_total(jobs)  # certified bracket on the repacking adversary
    print(f"OPT_total in [{opt.lower:.3f}, {opt.upper:.3f}]"
          f" ({'exact' if opt.exact else 'bracket'})")
    print(f"{'algorithm':22s} {'usage':>8s} {'bins':>5s} {'ratio':>7s}")
    for name in sorted(ALGORITHM_REGISTRY):
        r = run_packing(jobs, make_algorithm(name))
        print(f"{name:22s} {r.total_usage_time:>8.3f} {r.num_bins:>5d} "
              f"{r.total_usage_time / opt.lower:>7.3f}")
    print()

    # --- Theorem 1 -------------------------------------------------------
    mu = jobs.mu
    bound = mu + 4.0
    ratio = result.total_usage_time / opt.lower
    print(f"µ = {mu:.2f}; Theorem 1 bound µ+4 = {bound:.2f}; "
          f"measured First Fit ratio = {ratio:.3f} "
          f"({'OK' if ratio <= bound else 'VIOLATION'})")


if __name__ == "__main__":
    main()
