#!/usr/bin/env python
"""Walk through the paper's proof machinery on a live instance.

Reproduces, step by step, the structures Sections IV–VII build to prove
Theorem 1 (First Fit is (µ+4)-competitive):

1. the usage-period decomposition U = V ⊎ W with ΣW = span (Figure 2),
2. small-item selection and the l/h-subperiod split (Figure 3),
3. supplier bins, pairing and supplier periods (Figure 4),
4. the non-intersection of supplier periods (Lemma 2, Figures 5–6),
5. the amortised accounting: FF_total ≤ (µ+3)·time–space + span
   ≤ (µ+4)·OPT_total.

Run:  python examples/proof_walkthrough.py
"""

from repro import FirstFit, opt_total, run_packing
from repro.analysis import (
    analyze_suppliers,
    build_subperiods,
    decompose_usage_periods,
    theorem1_slack,
    verify_analysis,
)
from repro.viz import render_subperiods, render_usage_decomposition
from repro.workloads import poisson_workload


def main() -> None:
    inst = poisson_workload(60, seed=12, mu_target=4.0, arrival_rate=3.0)
    result = run_packing(inst, FirstFit())
    mu = inst.mu
    print(f"instance: {len(inst)} jobs, µ = {mu:.2f}; "
          f"First Fit used {result.num_bins} bins, "
          f"total usage {result.total_usage_time:.2f}")
    print()

    # --- Section IV -------------------------------------------------------
    deco = decompose_usage_periods(result)
    print("Section IV — usage periods (Figure 2):")
    print(render_usage_decomposition(result, deco))
    print(f"ΣV = {deco.total_v:.2f}, ΣW = span = {deco.total_w:.2f} "
          f"(span = {inst.span:.2f}), FF_total = ΣV + span ✓")
    print()

    # --- Section V ---------------------------------------------------------
    subs = build_subperiods(result, deco)
    n_l = sum(len(b.l_subperiods) for b in subs)
    n_h = sum(len(b.h_subperiods) for b in subs)
    print(f"Section V — subperiods (Figure 3): {n_l} l-subperiods "
          f"(potentially low utilisation), {n_h} h-subperiods (level ≥ 1/2)")

    # --- Sections V-VI ------------------------------------------------------
    analysis = analyze_suppliers(result, subs)
    singles = sum(1 for g in analysis.groups if g.is_single)
    consolidated = len(analysis.groups) - singles
    print(f"Sections V–VI — suppliers (Figure 4): {len(analysis.groups)} "
          f"groups ({singles} single, {consolidated} consolidated), "
          f"pair coefficient = µ = {analysis.pair_coefficient_used:.2f}, "
          f"supplier radius = |x|/(µ+1)")
    print(render_subperiods(result, analysis))
    print()

    # --- the full checker ----------------------------------------------------
    report = verify_analysis(result)
    print("Propositions 3–6, Lemma 2, Eq. (1):",
          "ALL HOLD" if report.ok else f"{len(report.violations)} violations")
    ts = inst.time_space_demand
    print(f"closed-form chain: FF_total = {result.total_usage_time:.2f} ≤ "
          f"(µ+3)·TS + span = {(mu + 3) * ts + inst.span:.2f} "
          f"(slack {report.closed_form_slack:.2f})")

    opt = opt_total(inst)
    slack = theorem1_slack(result, opt.lower)
    print(f"Theorem 1: (µ+4)·OPT = {(mu + 4) * opt.lower:.2f} ≥ "
          f"FF_total = {result.total_usage_time:.2f} (slack {slack:.2f}) ✓")


if __name__ == "__main__":
    main()
