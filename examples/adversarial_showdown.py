#!/usr/bin/env python
"""The paper's adversarial constructions, run live.

Three gadgets, three lessons:

1. **Section VIII pair construction** — Next Fit pays nµ while OPT pays
   n/2 + µ; the ratio marches toward 2µ as n grows.  First Fit on the
   same instance stays near-optimal.
2. **Universal blocker/filler gadget** — *no* mixing algorithm can avoid
   paying ≈ nµ against OPT ≈ n + µ: the µ lower bound every online
   algorithm is subject to.
3. **Best Fit staircase** — Best Fit scatters long fillers across Θ(√n)
   bins that First Fit consolidates into one.

Run:  python examples/adversarial_showdown.py
"""

from repro import BestFit, FirstFit, NextFit, opt_total, run_packing
from repro.viz import render_bins
from repro.workloads import (
    best_fit_staircase,
    next_fit_lower_bound,
    universal_lower_bound,
)


def ratio(result, opt) -> float:
    return result.total_usage_time / opt.lower


def main() -> None:
    print("=" * 70)
    print("1. Section VIII: Next Fit forced to 2µ")
    print("=" * 70)
    mu = 4.0
    print(f"{'n':>4s} {'NF_total':>9s} {'OPT':>7s} {'NF ratio':>9s} "
          f"{'analytic':>9s} {'FF ratio':>9s}   (limit 2µ = {2 * mu:g})")
    for n in (4, 8, 16, 32, 64, 128):
        inst = next_fit_lower_bound(n, mu)
        opt = opt_total(inst)
        nf = run_packing(inst, NextFit())
        ff = run_packing(inst, FirstFit())
        print(f"{n:>4d} {nf.total_usage_time:>9.1f} {opt.lower:>7.1f} "
              f"{ratio(nf, opt):>9.3f} {n * mu / (n / 2 + mu):>9.3f} "
              f"{ratio(ff, opt):>9.3f}")

    print()
    print("=" * 70)
    print("2. Universal lower bound: every algorithm pays ≈ µ")
    print("=" * 70)
    n = 24
    for mu in (2.0, 4.0, 8.0):
        inst = universal_lower_bound(n, mu)
        opt = opt_total(inst)
        rs = {
            "first-fit": run_packing(inst, FirstFit()),
            "best-fit": run_packing(inst, BestFit()),
            "next-fit": run_packing(inst, NextFit()),
        }
        line = "  ".join(f"{k}={ratio(v, opt):.3f}" for k, v in rs.items())
        print(f"µ={mu:>4g}:  {line}   (→ µ = {mu:g} as n → ∞)")

    print()
    print("=" * 70)
    print("3. Best Fit staircase: scattering vs consolidation")
    print("=" * 70)
    inst = best_fit_staircase(16, 6.0)
    bf = run_packing(inst, BestFit())
    ff = run_packing(inst, FirstFit())
    opt = opt_total(inst)
    print(f"Best Fit : usage {bf.total_usage_time:.2f}  ratio {ratio(bf, opt):.3f}")
    print(render_bins(bf))
    print()
    print(f"First Fit: usage {ff.total_usage_time:.2f}  ratio {ratio(ff, opt):.3f}")
    print(render_bins(ff))


if __name__ == "__main__":
    main()
