#!/usr/bin/env python
"""Three worlds, one instance: repacking, offline, and online.

The paper's competitive ratio compares an online algorithm against an
adversary that repacks everything at every instant.  This example makes
the comparison concrete on a single workload:

1. the **repacking adversary**'s actual trajectory (and how many
   migrations it performs — the thing the paper's own motivation says
   real systems cannot do),
2. the **offline non-migratory optimum** (knows the future, never moves
   a job),
3. **First Fit** (knows nothing, moves nothing),

with all three costs and both gaps — the price of migration and the
price of online-ness.

Run:  python examples/offline_vs_online.py
"""

from repro import FirstFit, opt_total, run_packing
from repro.offline import exact_offline, greedy_offline, local_search
from repro.opt import build_repacking_schedule
from repro.viz import render_bins
from repro.viz.schedule_view import render_assignment, render_schedule
from repro.workloads import poisson_workload


def main() -> None:
    inst = poisson_workload(14, seed=21, mu_target=6.0, arrival_rate=1.5)
    print(f"instance: {len(inst)} jobs, µ = {inst.mu:.2f}, "
          f"span = {inst.span:.2f}")
    print()

    # --- world 1: the repacking adversary --------------------------------
    schedule = build_repacking_schedule(inst)
    opt = opt_total(inst)
    print("WORLD 1 — the repacking adversary (the paper's OPT_total):")
    print(render_schedule(schedule))
    print()

    # --- world 2: offline, non-migratory ----------------------------------
    exact, certified = exact_offline(inst)
    heuristic = local_search(greedy_offline(inst))
    print("WORLD 2 — offline non-migratory "
          f"({'certified optimal' if certified else 'best found'}):")
    print(render_assignment(exact))
    print(f"(heuristic greedy+local-search got {heuristic.cost():.3f})")
    print()

    # --- world 3: online First Fit ----------------------------------------
    ff = run_packing(inst, FirstFit())
    print("WORLD 3 — online First Fit:")
    print(render_bins(ff))
    print()

    # --- the decomposition --------------------------------------------------
    print("cost decomposition:")
    print(f"  repacking OPT_total      {opt.lower:8.3f}")
    print(f"  offline non-migratory    {exact.cost():8.3f}   "
          f"(price of no migration: {exact.cost() / opt.lower:.3f}x)")
    print(f"  online First Fit         {ff.total_usage_time:8.3f}   "
          f"(price of online-ness:  {ff.total_usage_time / exact.cost():.3f}x)")
    print(f"  Theorem 1 ceiling        {(inst.mu + 4) * opt.lower:8.3f}   "
          f"((µ+4)·OPT — never approached on typical instances)")


if __name__ == "__main__":
    main()
